#include "apps/gridftp.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "numa/process.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace e2e::apps {

namespace {

struct ProcCtx {
  tcp::Connection* conn = nullptr;
  numa::Thread* th = nullptr;
  numa::Placement buf;
  GridFtpEndpoint ep;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t chunk = 0;
  bool direct = false;
};

/// The sender process's single thread: read a chunk, then send it — the
/// network is idle during the read and the disk idle during the send.
sim::Task<> sender_proc(ProcCtx c, sim::WaitGroup* wg) {
  std::uint64_t off = c.begin;
  while (off < c.end) {
    const std::uint64_t n = std::min(c.chunk, c.end - off);
    co_await c.ep.fs->read(*c.th, *c.ep.file, off, n, c.buf, c.direct,
                           metrics::CpuCategory::kLoad);
    co_await c.conn->send(*c.th, c.buf, n);
    off += n;
  }
  c.conn->shutdown(*c.th);
  wg->done();
}

sim::Task<> receiver_proc(ProcCtx c, metrics::ThroughputMeter* meter,
                          sim::WaitGroup* wg) {
  std::uint64_t off = c.begin;
  for (;;) {
    const std::uint64_t n = co_await c.conn->recv(*c.th, c.buf);
    if (n == 0) break;
    co_await c.ep.fs->write(*c.th, *c.ep.file, off, n, c.buf, c.direct,
                            metrics::CpuCategory::kOffload);
    if (meter != nullptr) meter->record(n);
    off += n;
  }
  wg->done();
}

}  // namespace

sim::Task<rftp::TransferResult> gridftp_transfer(
    GridFtpEndpoint src, GridFtpEndpoint dst,
    const std::vector<GridFtpLink>& links, std::uint64_t total_bytes,
    GridFtpConfig cfg, metrics::ThroughputMeter* meter) {
  auto& eng = src.host->engine();
  const sim::SimTime t0 = eng.now();

  // One single-threaded process per parallel transfer, numactl-bound to
  // its link's NIC node when numa_bind is set (the paper's fair setup).
  std::vector<std::unique_ptr<numa::Process>> procs;
  std::vector<std::unique_ptr<tcp::Connection>> conns;
  sim::WaitGroup wg(eng);

  const std::uint64_t share =
      (total_bytes + cfg.processes - 1) / cfg.processes;
  for (int p = 0; p < cfg.processes; ++p) {
    const GridFtpLink& l = links[static_cast<std::size_t>(p) % links.size()];
    const auto bind_src = cfg.numa_bind
                              ? numa::NumaBinding::bound(l.node_src)
                              : numa::NumaBinding::os_default();
    const auto bind_dst = cfg.numa_bind
                              ? numa::NumaBinding::bound(l.node_dst)
                              : numa::NumaBinding::os_default();
    procs.push_back(std::make_unique<numa::Process>(
        *src.host, "gridftp-s" + std::to_string(p), bind_src));
    numa::Process& ps = *procs.back();
    procs.push_back(std::make_unique<numa::Process>(
        *dst.host, "gridftp-r" + std::to_string(p), bind_dst));
    numa::Process& pr = *procs.back();

    conns.push_back(std::make_unique<tcp::Connection>(
        *src.host, l.node_src, *dst.host, l.node_dst, *l.link));
    tcp::Connection* conn = conns.back().get();

    ProcCtx cs{};
    cs.conn = conn;
    cs.th = &ps.spawn_thread();
    cs.buf = ps.alloc(cfg.chunk_bytes, cs.th->node());
    cs.ep = src;
    cs.begin = std::min<std::uint64_t>(p * share, total_bytes);
    cs.end = std::min<std::uint64_t>(cs.begin + share, total_bytes);
    cs.chunk = cfg.chunk_bytes;
    cs.direct = cfg.direct_io;

    ProcCtx cr = cs;
    cr.th = &pr.spawn_thread();
    cr.buf = pr.alloc(cfg.chunk_bytes, cr.th->node());
    cr.ep = dst;

    co_await conn->connect(*cs.th);
    wg.add(2);
    sim::co_spawn(sender_proc(cs, &wg));
    sim::co_spawn(receiver_proc(cr, meter, &wg));
  }

  co_await wg.wait();

  rftp::TransferResult r;
  r.bytes = total_bytes;
  r.blocks = (total_bytes + cfg.chunk_bytes - 1) / cfg.chunk_bytes;
  r.elapsed_s = sim::to_seconds(eng.now() - t0);
  r.goodput_gbps =
      r.elapsed_s > 0
          ? static_cast<double>(total_bytes) * 8.0 / r.elapsed_s / 1e9
          : 0.0;
  co_return r;
}

}  // namespace e2e::apps
