#include "rdma/qp.hpp"

#include <stdexcept>

#include "check/audit.hpp"
#include "sim/sync.hpp"

namespace e2e::rdma {

QueuePair::QueuePair(Device& dev, CompletionQueue& send_cq,
                     CompletionQueue& recv_cq)
    : dev_(dev),
      scq_(send_cq),
      rcq_(recv_cq),
      send_q_(dev.host().engine()),
      inbound_(dev.host().engine()),
      recv_q_(dev.host().engine()),
      error_event_(dev.host().engine()),
      ready_event_(dev.host().engine()) {
  ready_event_.set();
}

trace::TrackId QueuePair::tx_track(trace::Tracer* tr) {
  return trace_tx_.get_lazy(tr, trace::Layer::kRdma, [this] {
    return dev_.host().name() + "/qp-tx";
  });
}

trace::TrackId QueuePair::rx_track(trace::Tracer* tr) {
  return trace_rx_.get_lazy(tr, trace::Layer::kRdma, [this] {
    return dev_.host().name() + "/qp-rx";
  });
}

void QueuePair::kill() {
  if (state_ == QpState::kError) return;
  state_ = QpState::kError;
  ++epoch_;
  ready_event_.reset();
  error_event_.set();
  if (auto* tr = trace::of(dev_.host().engine())) {
    const auto tk = tx_track(tr);
    tr->instant(tk, "qp-error");
    tr->counter("rdma/qp_errors").add(1);
  }
  if (auto* st = stats::of(dev_.host().engine())) {
    const auto e = stats_entity(st);
    st->flight(stats::Layer::kRdma, e, code_kill_.get(st, "qp-kill"), 0);
  }
}

void QueuePair::crash() {
  kill();
  // A crashed host loses its receive ring: drain (never close — the
  // receiver loop must survive for the restart epoch) every posted WR.
  while (recv_q_.try_recv().has_value()) ++recvs_dropped_;
  // It also loses its CQ memory: completions that landed before the
  // crash but were never reaped must not replay into whatever consumer
  // the restart epoch arms (a grant completion from the dead connection
  // replayed after re-login would double-issue that credit token).
  cqes_dropped_ += scq_.discard_pending() + rcq_.discard_pending();
}

sim::Task<> QueuePair::recover(numa::Thread& th,
                               std::uint64_t revalidate_bytes) {
  if (state_ == QpState::kRts) co_return;
  const auto& cm = th.host().costs();
  // reset->init->RTR->RTS bring-up, then MR revalidation (re-pinning the
  // registered regions the reset NIC dropped).
  co_await th.compute(cm.rdma_setup_cycles, metrics::CpuCategory::kUserProto);
  if (revalidate_bytes > 0) {
    const double pages = static_cast<double>(revalidate_bytes) / 4096.0;
    co_await th.compute(pages * cm.rdma_mr_register_cycles_per_page,
                        metrics::CpuCategory::kUserProto);
  }
  state_ = QpState::kRts;
  ++epoch_;
  ++recoveries_;
  error_event_.reset();
  ready_event_.set();
  if (auto* tr = trace::of(dev_.host().engine())) {
    const auto tk = tx_track(tr);
    tr->instant(tk, "qp-rts");
    tr->counter("rdma/qp_recoveries").add(1);
  }
  if (auto* st = stats::of(dev_.host().engine())) {
    const auto e = stats_entity(st);
    st->counter(e, "recoveries").add(1);
    st->flight(stats::Layer::kRdma, e, code_recover_.get(st, "qp-recover"),
               recoveries_);
  }
}

void QueuePair::connect(QueuePair& a, QueuePair& b, net::Link& link) {
  if (a.connected() || b.connected())
    throw std::logic_error("queue pair already connected");
  a.peer_ = &b;
  b.peer_ = &a;
  a.link_ = &link;
  b.link_ = &link;
  // When the link knows its physical sides, transmit on the direction
  // matching each endpoint's host; otherwise `a` takes direction 0.
  a.dir_ = link.bound() ? link.dir_from(&a.device().host()) : 0;
  b.dir_ = 1 - a.dir_;
  sim::co_spawn(a.sender_loop());
  sim::co_spawn(a.receiver_loop());
  sim::co_spawn(b.sender_loop());
  sim::co_spawn(b.receiver_loop());
}

void QueuePair::validate_send(const SendWr& wr) const {
  if (!connected()) throw std::logic_error("post_send on unconnected QP");
  if (wr.local == nullptr && wr.bytes > 0)
    throw std::invalid_argument("send WR without a local buffer");
  if (wr.local) ProtectionDomain::require_registered(*wr.local);
  if ((wr.op == Opcode::kWrite || wr.op == Opcode::kWriteImm ||
       wr.op == Opcode::kRead) &&
      wr.remote.buffer == nullptr)
    throw std::invalid_argument("one-sided WR without a remote key");
}

void QueuePair::enqueue_send(const SendWr& wr) {
  if (auto* tr = trace::of(dev_.host().engine()))
    ctr_wr_posted_.get(tr, "rdma/wr_posted").add(1);
  if (auto* st = stats::of(dev_.host().engine())) {
    const auto e = stats_entity(st);
    sctr_posted_.get(st, e, "wr_posted").add(1);
  }
  // Posting to an error-state QP is legal but the WR must flush with a
  // failed completion right away and never reach the wire — queueing it
  // would let a recover() racing ahead of the NIC engine transmit a stale
  // WR, which verbs forbids.
  if (state_ == QpState::kError) {
    ++sends_flushed_;
    if (auto* au = check::of(dev_.host().engine()))
      au->on_qp_post_dead(this, dev_.host().name());
    scq_.push({wr.op, wr.wr_id, wr.bytes, 0, false, nullptr});
    if (auto* tr = trace::of(dev_.host().engine())) {
      const auto tk = tx_track(tr);
      tr->instant(tk, "flush-err");
      tr->counter("rdma/sends_flushed").add(1);
      tr->counter("rdma/cq_completions").add(1);
    }
    if (auto* st = stats::of(dev_.host().engine())) {
      const auto e = stats_entity(st);
      sctr_flushed_.get(st, e, "sends_flushed").add(1);
      st->flight(stats::Layer::kRdma, e, code_flush_.get(st, "wr-flush"),
                 wr.wr_id);
    }
    return;
  }
  send_q_.send(wr);
  // Depth after queueing: how many WRs the NIC engine has not picked up.
  if (auto* st = stats::of(dev_.host().engine())) {
    const auto e = stats_entity(st);
    gauge_sq_.get(st, e, "sq_depth")
        .set(static_cast<double>(send_q_.size()));
  }
}

sim::Task<> QueuePair::post_send(numa::Thread& th, const SendWr& wr) {
  validate_send(wr);
  co_await th.compute(th.host().costs().rdma_post_wr_cycles,
                      metrics::CpuCategory::kUserProto);
  enqueue_send(wr);
}

sim::Task<> QueuePair::post_send_batch(numa::Thread& th,
                                       const std::vector<SendWr>& wrs) {
  if (wrs.empty()) co_return;
  for (const SendWr& wr : wrs) validate_send(wr);
  const auto& cm = th.host().costs();
  co_await th.compute(cm.rdma_post_wr_cycles +
                          static_cast<double>(wrs.size() - 1) *
                              cm.rdma_doorbell_wr_cycles,
                      metrics::CpuCategory::kUserProto);
  for (const SendWr& wr : wrs) enqueue_send(wr);
}

sim::Task<> QueuePair::post_recv(numa::Thread& th, RecvWr wr) {
  if (wr.buf == nullptr) throw std::invalid_argument("recv WR without buffer");
  ProtectionDomain::require_registered(*wr.buf);
  co_await th.compute(th.host().costs().rdma_post_wr_cycles,
                      metrics::CpuCategory::kUserProto);
  recv_q_.send(wr);
}

sim::Task<> QueuePair::post_recv_batch(numa::Thread& th,
                                       const std::vector<RecvWr>& wrs) {
  if (wrs.empty()) co_return;
  for (const RecvWr& wr : wrs) {
    if (wr.buf == nullptr)
      throw std::invalid_argument("recv WR without buffer");
    ProtectionDomain::require_registered(*wr.buf);
  }
  const auto& cm = th.host().costs();
  co_await th.compute(cm.rdma_post_wr_cycles +
                          static_cast<double>(wrs.size() - 1) *
                              cm.rdma_doorbell_wr_cycles,
                      metrics::CpuCategory::kUserProto);
  for (const RecvWr& wr : wrs) recv_q_.send(wr);
}

void QueuePair::deliver_after_latency(Delivery d,
                                      sim::SimDuration extra_latency) {
  QueuePair* peer = peer_;
  sim::Engine& own = dev_.host().engine();
  sim::Engine& peer_eng = peer->dev_.host().engine();
  if (&peer_eng == &own) {
    // Old-incarnation rejection: stamp the receiver's epoch as the message
    // leaves this end. If the peer is torn down and rebuilt while it is in
    // flight (host crash + restart), the stamp no longer matches by arrival
    // — the PSN/QPN mismatch of real verbs — and the receiver drops it
    // instead of handing a dead connection's traffic to the new epoch.
    d.epoch = peer->epoch_;
    own.schedule_after(
        link_->latency() + extra_latency,
        [peer, d]() mutable { peer->inbound_.send(std::move(d)); });
    return;
  }
  // Cross-shard peer: the receiver's epoch counter belongs to another
  // shard's worker thread, so it cannot be read here. Stamp it as the
  // message is enqueued on the destination engine instead — that runs on
  // the receiver's thread, and any kill()/recover() the receiver performs
  // up to the arrival instant is already reflected, which is the same
  // stale-incarnation cutoff the send-time stamp gives intra-shard (the
  // epoch can only have advanced while the message was in flight).
  own.cross_post(
      peer_eng,
      sim::Engine::saturating_add(own.now(), link_->latency() + extra_latency),
      [peer, d]() mutable {
        d.epoch = peer->epoch_;
        peer->inbound_.send(std::move(d));
      });
}

// Pushes a failed completion for `wr`, after `delay` when the failure only
// surfaces once transport-level retries exhaust (blackholed path).
void QueuePair::fail_send(const SendWr& wr, sim::SimDuration delay,
                          const char* what) {
  auto& eng = dev_.host().engine();
  const WorkCompletion wc{wr.op, wr.wr_id, wr.bytes, 0, false, nullptr};
  if (delay > 0) {
    CompletionQueue* scq = &scq_;
    eng.schedule_after(delay, [scq, wc] { scq->push(wc); });
  } else {
    scq_.push(wc);
  }
  if (auto* tr = trace::of(eng)) {
    const auto tk = tx_track(tr);
    tr->instant(tk, what);
    tr->counter("rdma/wire_failures").add(1);
    tr->counter("rdma/cq_completions").add(1);
  }
  if (auto* st = stats::of(eng)) {
    const auto e = stats_entity(st);
    st->counter(e, "wire_failures").add(1);
    st->flight(stats::Layer::kRdma, e,
               code_wire_fail_.get(st, "wire-failure"), wr.wr_id);
  }
}

sim::Task<> QueuePair::sender_loop() {
  auto& eng = dev_.host().engine();
  for (;;) {
    auto wr = co_await send_q_.recv();
    if (!wr) co_return;

    // Error-state QP: flush the WR with a failed completion, no wire time.
    if (state_ == QpState::kError) {
      ++sends_flushed_;
      scq_.push({wr->op, wr->wr_id, wr->bytes, 0, false, nullptr});
      if (auto* tr = trace::of(eng)) {
        const auto tk = tx_track(tr);
        tr->instant(tk, "flush-err");
        tr->counter("rdma/sends_flushed").add(1);
        tr->counter("rdma/cq_completions").add(1);
      }
      if (auto* st = stats::of(eng)) {
        const auto e = stats_entity(st);
        sctr_flushed_.get(st, e, "sends_flushed").add(1);
        st->flight(stats::Layer::kRdma, e, code_flush_.get(st, "wr-flush"),
                   wr->wr_id);
      }
      continue;
    }

    if (wr->op == Opcode::kRead) {
      // Reads proceed concurrently: the responder's read engine streams
      // each request independently of the send queue.
      sim::co_spawn(serve_read(*wr));
      continue;
    }

    // Transmit path: the DMA engine and the wire pipeline — the WR
    // completes when both the memory fetch and the serialization finish,
    // but the next WR's DMA is not held behind this WR's wire time.
    const sim::SimTime t0 = eng.now();
    if (wr->bytes > 0) {
      const sim::SimTime dma_done =
          dev_.charge_dma(wr->local->placement, wr->bytes, /*to_wire=*/true);
      co_await link_->dir(dir_).acquire(
          link_->wire_bytes(static_cast<double>(wr->bytes), header_per_mtu()));
      co_await sim::until(eng, dma_done);
    }
    // The QP may have been killed while this WR waited on DMA/wire time.
    if (state_ == QpState::kError) {
      ++sends_flushed_;
      fail_send(*wr, 0, "flush-err");
      continue;
    }
    // Injected wire faults surface as failed completions; the payload
    // never reaches the peer (the app-level protocol must retransmit).
    const net::TxFate fate = link_->transmit_fate(
        dir(), link_->wire_bytes(static_cast<double>(wr->bytes),
                                 header_per_mtu()));
    if (fate.fail) {
      if (auto* tr = trace::of(eng)) {
        const auto tk = tx_track(tr);
        tr->complete(tk, op_name(tr, wr->op), t0);
      }
      fail_send(*wr, fate.fail_delay, "wire-failure");
      continue;
    }
    bytes_sent_ += wr->bytes;
    if (auto* au = check::of(eng))
      au->on_qp_tx(peer_, peer_->dev_.host().name(), wr->bytes);
    scq_.push({wr->op, wr->wr_id, wr->bytes, 0, true, nullptr});
    if (auto* tr = trace::of(eng)) {
      const auto tk = tx_track(tr);
      tr->complete(tk, op_name(tr, wr->op), t0);
      ctr_bytes_posted_.get(tr, "rdma/bytes_posted").add(wr->bytes);
      cq_completions(tr).add(1);
    }
    if (auto* st = stats::of(eng)) {
      const auto e = stats_entity(st);
      hist_wr_.get(st, e, "wr_ns").record(
          static_cast<std::uint64_t>(eng.now() - t0));
      gauge_sq_.get(st, e, "sq_depth")
          .set(static_cast<double>(send_q_.size()));
    }
    deliver_after_latency({wr->op, wr->bytes, wr->remote.buffer, wr->imm,
                           std::move(wr->payload), wr->content_tag},
                          fate.extra_latency);
  }
}

void QueuePair::note_inbound_drop(const Delivery& d) {
  auto& eng = dev_.host().engine();
  ++inbound_dropped_;
  if (auto* au = check::of(eng))
    au->on_qp_drop(this, dev_.host().name(), d.bytes);
  if (auto* tr = trace::of(eng)) {
    const auto tk = rx_track(tr);
    tr->instant(tk, "drop-err");
    tr->counter("rdma/inbound_dropped").add(1);
  }
  if (auto* st = stats::of(eng)) {
    const auto e = stats_entity(st);
    sctr_dropped_.get(st, e, "inbound_dropped").add(1);
    st->flight(stats::Layer::kRdma, e, code_drop_.get(st, "rx-drop"),
               d.bytes);
  }
}

sim::Task<> QueuePair::receiver_loop() {
  auto& eng = dev_.host().engine();
  for (;;) {
    auto d = co_await inbound_.recv();
    if (!d) co_return;
    // An errored QP drops inbound traffic on the floor (the real NIC nacks
    // it; the sender's transport-level retries eventually surface a failed
    // completion on its side). A stale epoch means the QP died after this
    // message arrived and a recover() raced ahead of the processing — the
    // message belongs to the dead connection, so it drops all the same.
    if (state_ == QpState::kError || d->epoch != epoch_) {
      note_inbound_drop(*d);
      continue;
    }
    const sim::SimTime t0 = eng.now();
    // Receiver-not-ready: a two-sided arrival with no posted receive
    // stalls the inbound pipeline until the application posts one.
    if ((d->op == Opcode::kSend || d->op == Opcode::kWriteImm) &&
        recv_q_.size() == 0) {
      if (auto* tr = trace::of(eng)) {
        const auto tk = rx_track(tr);
        tr->instant(tk, "rnr");
        tr->counter("rdma/rnr_waits").add(1);
      }
      if (auto* st = stats::of(eng)) {
        const auto e = stats_entity(st);
        st->counter(e, "rnr_waits").add(1);
        st->flight(stats::Layer::kRdma, e, code_rnr_.get(st, "rnr"),
                   d->bytes);
      }
    }

    switch (d->op) {
      case Opcode::kSend: {
        // Consume a posted receive; wait (receiver-not-ready) when none.
        auto rwr = co_await recv_q_.recv();
        if (!rwr) co_return;
        if (d->epoch != epoch_) {
          // The QP died while this arrival waited receiver-not-ready; the
          // receive it just consumed was posted by the new epoch, so hand
          // it back before dropping the dead epoch's message.
          recv_q_.send(*rwr);
          note_inbound_drop(*d);
          continue;
        }
        if (rwr->buf->bytes < d->bytes)
          throw std::length_error("posted receive smaller than inbound send");
        if (auto* au = check::of(eng))
          au->on_dma_check(this, dev_.host().name(), rwr->buf->registered,
                           "send landing in posted receive");
        const sim::SimTime done =
            dev_.charge_dma(rwr->buf->placement, d->bytes, /*to_wire=*/false);
        co_await sim::until(eng, done);
        if (d->epoch != epoch_) {  // QP died mid-DMA: landing voided
          note_inbound_drop(*d);
          continue;
        }
        bytes_delivered_ += d->bytes;
        if (auto* au = check::of(eng))
          au->on_qp_rx(this, dev_.host().name(), d->bytes);
        rcq_.push({Opcode::kSend, rwr->wr_id, d->bytes, d->imm, true,
                   std::move(d->payload)});
        break;
      }
      case Opcode::kWriteImm: {
        auto rwr = co_await recv_q_.recv();
        if (!rwr) co_return;
        if (d->epoch != epoch_) {  // see the kSend twin above
          recv_q_.send(*rwr);
          note_inbound_drop(*d);
          continue;
        }
        if (auto* au = check::of(eng))
          au->on_dma_check(this, dev_.host().name(), d->target->registered,
                           "write-imm target region");
        const sim::SimTime done =
            dev_.charge_dma(d->target->placement, d->bytes, /*to_wire=*/false);
        co_await sim::until(eng, done);
        if (d->epoch != epoch_) {  // QP died mid-DMA: landing voided
          note_inbound_drop(*d);
          continue;
        }
        bytes_delivered_ += d->bytes;
        if (auto* au = check::of(eng))
          au->on_qp_rx(this, dev_.host().name(), d->bytes);
        d->target->content_tag ^= d->content_tag;
        rcq_.push({Opcode::kWriteImm, rwr->wr_id, d->bytes, d->imm, true,
                   std::move(d->payload)});
        break;
      }
      case Opcode::kWrite: {
        if (auto* au = check::of(eng))
          au->on_dma_check(this, dev_.host().name(), d->target->registered,
                           "write target region");
        const sim::SimTime done =
            dev_.charge_dma(d->target->placement, d->bytes, /*to_wire=*/false);
        co_await sim::until(eng, done);
        if (d->epoch != epoch_) {  // QP died mid-DMA: landing voided
          note_inbound_drop(*d);
          continue;
        }
        bytes_delivered_ += d->bytes;
        if (auto* au = check::of(eng))
          au->on_qp_rx(this, dev_.host().name(), d->bytes);
        d->target->content_tag ^= d->content_tag;
        break;  // silent at the responder
      }
      case Opcode::kRead:
        throw std::logic_error("read delivered to receiver loop");
    }
    if (auto* tr = trace::of(eng)) {
      const auto tk = rx_track(tr);
      tr->complete(tk, op_name(tr, d->op), t0);
      ctr_bytes_delivered_.get(tr, "rdma/bytes_delivered").add(d->bytes);
      if (d->op != Opcode::kWrite) cq_completions(tr).add(1);
    }
  }
}

sim::Task<> QueuePair::serve_read(SendWr wr) {
  auto& eng = dev_.host().engine();
  auto& resp_eng = peer_->dev_.host().engine();
  const auto& cm = dev_.host().costs();
  const sim::SimTime read_t0 = eng.now();
  // Reads overlap each other, so they trace as async spans keyed by wr_id.
  if (auto* tr = trace::of(eng))
    tr->async_begin(tx_track(tr), "read", wr.wr_id);

  // Read request travels to the responder...
  co_await link_->dir(dir_).acquire(64.0);

  net::TxFate fate;
  std::uint64_t remote_tag = 0;
  if (&resp_eng != &eng) {
    // Cross-shard responder: hop onto its engine for the remote-side
    // segment — the responder's DMA resources, the response-direction wire
    // resource, and the responder shard's audit/fate state all live there.
    // The hop rides the link's one-way latency, which is at least the
    // cluster lookahead, so the resume lands past the window horizon.
    co_await sim::Hop{eng, resp_eng,
                      sim::Engine::saturating_add(eng.now(), link_->latency())};
    if (auto* au = check::of(resp_eng))
      au->on_dma_check(this, dev_.host().name(), wr.remote.buffer->registered,
                       "read source region");
    const sim::SimTime fetch_done = peer_->dev_.charge_dma(
        wr.remote.buffer->placement, wr.bytes, /*to_wire=*/true);
    co_await link_->dir(1 - dir_).acquire(
        link_->wire_bytes(static_cast<double>(wr.bytes), header_per_mtu()) /
        cm.rdma_read_efficiency);
    co_await sim::until(resp_eng, fetch_done);
    // Fate and content tag are responder-side state: sample them here,
    // before hopping home (the requester's own error state is folded in
    // back on its shard, below).
    fate = link_->transmit_fate(
        opposite(dir()),
        link_->wire_bytes(static_cast<double>(wr.bytes), header_per_mtu()));
    remote_tag = wr.remote.buffer->content_tag;
    co_await sim::Hop{
        resp_eng, eng,
        sim::Engine::saturating_add(resp_eng.now(), link_->latency())};
    if (state_ == QpState::kError) fate = net::TxFate{true, 0, 0};
  } else {
    co_await sim::Delay{eng, link_->latency()};

    // ...whose NIC fetches the remote region with zero remote CPU and
    // streams the response. RDMA Read sustains only `rdma_read_efficiency`
    // of the line rate (request/response turnaround), per the paper's
    // observation.
    if (auto* au = check::of(eng))
      au->on_dma_check(this, dev_.host().name(), wr.remote.buffer->registered,
                       "read source region");
    const sim::SimTime fetch_done = peer_->dev_.charge_dma(
        wr.remote.buffer->placement, wr.bytes, /*to_wire=*/true);
    co_await link_->dir(1 - dir_).acquire(
        link_->wire_bytes(static_cast<double>(wr.bytes), header_per_mtu()) /
        cm.rdma_read_efficiency);
    co_await sim::until(eng, fetch_done);
    co_await sim::Delay{eng, link_->latency()};

    fate = state_ == QpState::kError
               ? net::TxFate{true, 0, 0}
               : link_->transmit_fate(
                     opposite(dir()),
                     link_->wire_bytes(static_cast<double>(wr.bytes),
                                       header_per_mtu()));
  }
  if (fate.fail) {
    if (auto* tr = trace::of(eng)) {
      const auto tk = tx_track(tr);
      tr->async_end(tk, "read", wr.wr_id);
    }
    fail_send(wr, fate.fail_delay, "wire-failure");
    co_return;
  }
  if (fate.extra_latency > 0) co_await sim::Delay{eng, fate.extra_latency};
  const sim::SimTime land_done =
      dev_.charge_dma(wr.local->placement, wr.bytes, /*to_wire=*/false);
  co_await sim::until(eng, land_done);
  bytes_sent_ += wr.bytes;  // counted at the requester, as verbs does
  // The landed data is a copy of the remote region: adopt its content tag.
  // Cross-shard reads use the tag sampled on the responder's engine at
  // fetch time — the remote buffer must not be dereferenced from here.
  wr.local->content_tag =
      &resp_eng != &eng ? remote_tag : wr.remote.buffer->content_tag;
  scq_.push({Opcode::kRead, wr.wr_id, wr.bytes, 0, true, nullptr});
  if (auto* tr = trace::of(eng)) {
    const auto tk = tx_track(tr);
    tr->async_end(tk, "read", wr.wr_id);
    ctr_bytes_posted_.get(tr, "rdma/bytes_posted").add(wr.bytes);
    cq_completions(tr).add(1);
  }
  if (auto* st = stats::of(eng)) {
    const auto e = stats_entity(st);
    hist_read_.get(st, e, "read_ns")
        .record(static_cast<std::uint64_t>(eng.now() - read_t0));
  }
}

}  // namespace e2e::rdma
