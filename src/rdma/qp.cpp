#include "rdma/qp.hpp"

#include <stdexcept>

#include "sim/sync.hpp"

namespace e2e::rdma {

QueuePair::QueuePair(Device& dev, CompletionQueue& send_cq,
                     CompletionQueue& recv_cq)
    : dev_(dev),
      scq_(send_cq),
      rcq_(recv_cq),
      send_q_(dev.host().engine()),
      inbound_(dev.host().engine()),
      recv_q_(dev.host().engine()) {}

void QueuePair::connect(QueuePair& a, QueuePair& b, net::Link& link) {
  if (a.connected() || b.connected())
    throw std::logic_error("queue pair already connected");
  a.peer_ = &b;
  b.peer_ = &a;
  a.link_ = &link;
  b.link_ = &link;
  // When the link knows its physical sides, transmit on the direction
  // matching each endpoint's host; otherwise `a` takes direction 0.
  a.dir_ = link.bound() ? link.dir_from(&a.device().host()) : 0;
  b.dir_ = 1 - a.dir_;
  sim::co_spawn(a.sender_loop());
  sim::co_spawn(a.receiver_loop());
  sim::co_spawn(b.sender_loop());
  sim::co_spawn(b.receiver_loop());
}

sim::Task<> QueuePair::post_send(numa::Thread& th, const SendWr& wr) {
  if (!connected()) throw std::logic_error("post_send on unconnected QP");
  if (wr.local == nullptr && wr.bytes > 0)
    throw std::invalid_argument("send WR without a local buffer");
  if (wr.local) ProtectionDomain::require_registered(*wr.local);
  if ((wr.op == Opcode::kWrite || wr.op == Opcode::kWriteImm ||
       wr.op == Opcode::kRead) &&
      wr.remote.buffer == nullptr)
    throw std::invalid_argument("one-sided WR without a remote key");
  co_await th.compute(th.host().costs().rdma_post_wr_cycles,
                      metrics::CpuCategory::kUserProto);
  if (auto* tr = trace::of(dev_.host().engine()))
    tr->counter("rdma/wr_posted").add(1);
  send_q_.send(wr);
}

sim::Task<> QueuePair::post_recv(numa::Thread& th, RecvWr wr) {
  if (wr.buf == nullptr) throw std::invalid_argument("recv WR without buffer");
  ProtectionDomain::require_registered(*wr.buf);
  co_await th.compute(th.host().costs().rdma_post_wr_cycles,
                      metrics::CpuCategory::kUserProto);
  recv_q_.send(wr);
}

void QueuePair::deliver_after_latency(Delivery d) {
  QueuePair* peer = peer_;
  dev_.host().engine().schedule_after(link_->latency(),
                                      [peer, d] { peer->inbound_.send(d); });
}

sim::Task<> QueuePair::sender_loop() {
  auto& eng = dev_.host().engine();
  for (;;) {
    auto wr = co_await send_q_.recv();
    if (!wr) co_return;

    if (wr->op == Opcode::kRead) {
      // Reads proceed concurrently: the responder's read engine streams
      // each request independently of the send queue.
      sim::co_spawn(serve_read(*wr));
      continue;
    }

    // Transmit path: the DMA engine and the wire pipeline — the WR
    // completes when both the memory fetch and the serialization finish,
    // but the next WR's DMA is not held behind this WR's wire time.
    const sim::SimTime t0 = eng.now();
    if (wr->bytes > 0) {
      const sim::SimTime dma_done =
          dev_.charge_dma(wr->local->placement, wr->bytes, /*to_wire=*/true);
      co_await link_->dir(dir_).acquire(
          link_->wire_bytes(static_cast<double>(wr->bytes), header_per_mtu()));
      co_await sim::until(eng, dma_done);
    }
    // Injected wire faults surface as failed completions; the payload
    // never reaches the peer (the app-level protocol must retransmit).
    if (link_->take_failure(dir_)) {
      scq_.push({wr->op, wr->wr_id, wr->bytes, 0, false, nullptr});
      if (auto* tr = trace::of(eng)) {
        const auto tk = trace_tx_.get(tr, trace::Layer::kRdma,
                                      dev_.host().name() + "/qp-tx");
        tr->complete(tk, to_string(wr->op), t0);
        tr->instant(tk, "wire-failure");
        tr->counter("rdma/wire_failures").add(1);
        tr->counter("rdma/cq_completions").add(1);
      }
      continue;
    }
    bytes_sent_ += wr->bytes;
    scq_.push({wr->op, wr->wr_id, wr->bytes, 0, true, nullptr});
    if (auto* tr = trace::of(eng)) {
      const auto tk = trace_tx_.get(tr, trace::Layer::kRdma,
                                    dev_.host().name() + "/qp-tx");
      tr->complete(tk, to_string(wr->op), t0);
      tr->counter("rdma/bytes_posted").add(wr->bytes);
      tr->counter("rdma/cq_completions").add(1);
    }
    deliver_after_latency(
        {wr->op, wr->bytes, wr->remote.buffer, wr->imm,
         std::move(wr->payload)});
  }
}

sim::Task<> QueuePair::receiver_loop() {
  auto& eng = dev_.host().engine();
  for (;;) {
    auto d = co_await inbound_.recv();
    if (!d) co_return;
    const sim::SimTime t0 = eng.now();
    // Receiver-not-ready: a two-sided arrival with no posted receive
    // stalls the inbound pipeline until the application posts one.
    if ((d->op == Opcode::kSend || d->op == Opcode::kWriteImm) &&
        recv_q_.size() == 0) {
      if (auto* tr = trace::of(eng)) {
        const auto tk = trace_rx_.get(tr, trace::Layer::kRdma,
                                      dev_.host().name() + "/qp-rx");
        tr->instant(tk, "rnr");
        tr->counter("rdma/rnr_waits").add(1);
      }
    }

    switch (d->op) {
      case Opcode::kSend: {
        // Consume a posted receive; wait (receiver-not-ready) when none.
        auto rwr = co_await recv_q_.recv();
        if (!rwr) co_return;
        if (rwr->buf->bytes < d->bytes)
          throw std::length_error("posted receive smaller than inbound send");
        const sim::SimTime done =
            dev_.charge_dma(rwr->buf->placement, d->bytes, /*to_wire=*/false);
        co_await sim::until(eng, done);
        bytes_delivered_ += d->bytes;
        rcq_.push({Opcode::kSend, rwr->wr_id, d->bytes, d->imm, true,
                   std::move(d->payload)});
        break;
      }
      case Opcode::kWriteImm: {
        auto rwr = co_await recv_q_.recv();
        if (!rwr) co_return;
        const sim::SimTime done =
            dev_.charge_dma(d->target->placement, d->bytes, /*to_wire=*/false);
        co_await sim::until(eng, done);
        bytes_delivered_ += d->bytes;
        rcq_.push({Opcode::kWriteImm, rwr->wr_id, d->bytes, d->imm, true,
                   std::move(d->payload)});
        break;
      }
      case Opcode::kWrite: {
        const sim::SimTime done =
            dev_.charge_dma(d->target->placement, d->bytes, /*to_wire=*/false);
        co_await sim::until(eng, done);
        bytes_delivered_ += d->bytes;
        break;  // silent at the responder
      }
      case Opcode::kRead:
        throw std::logic_error("read delivered to receiver loop");
    }
    if (auto* tr = trace::of(eng)) {
      const auto tk = trace_rx_.get(tr, trace::Layer::kRdma,
                                    dev_.host().name() + "/qp-rx");
      tr->complete(tk, to_string(d->op), t0);
      tr->counter("rdma/bytes_delivered").add(d->bytes);
      if (d->op != Opcode::kWrite) tr->counter("rdma/cq_completions").add(1);
    }
  }
}

sim::Task<> QueuePair::serve_read(SendWr wr) {
  auto& eng = dev_.host().engine();
  const auto& cm = dev_.host().costs();
  // Reads overlap each other, so they trace as async spans keyed by wr_id.
  if (auto* tr = trace::of(eng))
    tr->async_begin(trace_tx_.get(tr, trace::Layer::kRdma,
                                  dev_.host().name() + "/qp-tx"),
                    "read", wr.wr_id);

  // Read request travels to the responder...
  co_await link_->dir(dir_).acquire(64.0);
  co_await sim::Delay{eng, link_->latency()};

  // ...whose NIC fetches the remote region with zero remote CPU and streams
  // the response. RDMA Read sustains only `rdma_read_efficiency` of the
  // line rate (request/response turnaround), per the paper's observation.
  const sim::SimTime fetch_done = peer_->dev_.charge_dma(
      wr.remote.buffer->placement, wr.bytes, /*to_wire=*/true);
  co_await link_->dir(1 - dir_).acquire(
      link_->wire_bytes(static_cast<double>(wr.bytes), header_per_mtu()) /
      cm.rdma_read_efficiency);
  co_await sim::until(eng, fetch_done);
  co_await sim::Delay{eng, link_->latency()};

  if (link_->take_failure(1 - dir_)) {
    scq_.push({Opcode::kRead, wr.wr_id, wr.bytes, 0, false, nullptr});
    if (auto* tr = trace::of(eng)) {
      const auto tk = trace_tx_.get(tr, trace::Layer::kRdma,
                                    dev_.host().name() + "/qp-tx");
      tr->async_end(tk, "read", wr.wr_id);
      tr->instant(tk, "wire-failure");
      tr->counter("rdma/wire_failures").add(1);
      tr->counter("rdma/cq_completions").add(1);
    }
    co_return;
  }
  const sim::SimTime land_done =
      dev_.charge_dma(wr.local->placement, wr.bytes, /*to_wire=*/false);
  co_await sim::until(eng, land_done);
  bytes_sent_ += wr.bytes;  // counted at the requester, as verbs does
  scq_.push({Opcode::kRead, wr.wr_id, wr.bytes, 0, true, nullptr});
  if (auto* tr = trace::of(eng)) {
    const auto tk = trace_tx_.get(tr, trace::Layer::kRdma,
                                  dev_.host().name() + "/qp-tx");
    tr->async_end(tk, "read", wr.wr_id);
    tr->counter("rdma/bytes_posted").add(wr.bytes);
    tr->counter("rdma/cq_completions").add(1);
  }
}

}  // namespace e2e::rdma
