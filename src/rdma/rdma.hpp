// Umbrella header for the RDMA verbs layer.
#pragma once

#include "rdma/cm.hpp"
#include "rdma/device.hpp"
#include "rdma/qp.hpp"
#include "rdma/verbs.hpp"
