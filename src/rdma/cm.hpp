// Connection management conveniences (rdma_cm analogue).
//
// Owns the CQs and QPs of one connected pair; establish() performs the
// CM-style handshake, charging setup CPU on both sides and one RTT on the
// wire.
#pragma once

#include <memory>

#include "net/link.hpp"
#include "rdma/qp.hpp"
#include "rdma/verbs.hpp"

namespace e2e::rdma {

class ConnectedPair {
 public:
  ConnectedPair(Device& dev_a, Device& dev_b, net::Link& link)
      : a_scq_(dev_a.host().engine()),
        a_rcq_(dev_a.host().engine()),
        b_scq_(dev_b.host().engine()),
        b_rcq_(dev_b.host().engine()),
        a_(dev_a, a_scq_, a_rcq_),
        b_(dev_b, b_scq_, b_rcq_),
        link_(link) {
    QueuePair::connect(a_, b_, link);
  }

  /// CM handshake: QP bring-up CPU on both sides plus one round trip.
  sim::Task<> establish(numa::Thread& th_a, numa::Thread& th_b) {
    const auto& cm_a = a_.device().host().costs();
    const auto& cm_b = b_.device().host().costs();
    co_await th_a.compute(cm_a.rdma_setup_cycles,
                          metrics::CpuCategory::kUserProto);
    co_await th_b.compute(cm_b.rdma_setup_cycles,
                          metrics::CpuCategory::kUserProto);
    co_await sim::Delay{a_.device().host().engine(), link_.rtt()};
  }

  /// Kills both ends of the connection (NIC/QP fault): sends flush, inbound
  /// drops, until reestablish() brings the pair back.
  void kill() {
    a_.kill();
    b_.kill();
  }
  [[nodiscard]] bool alive() const noexcept {
    return a_.alive() && b_.alive();
  }

  /// Crash-stop of one endpoint (0 = a, 1 = b): the crashed side loses
  /// its posted receives (QueuePair::crash), the surviving side merely
  /// errors out (its state is intact but the connection is gone).
  void crash(int side) {
    QueuePair& dead = side == 0 ? a_ : b_;
    QueuePair& peer = side == 0 ? b_ : a_;
    dead.crash();
    peer.kill();
  }

  /// Recovers a killed pair: QP bring-up on both sides (including MR
  /// revalidation for the given registered bytes), then the CM handshake
  /// round trip. Safe to call when already established (no-op recover).
  sim::Task<> reestablish(numa::Thread& th_a, numa::Thread& th_b,
                          std::uint64_t mr_bytes_a = 0,
                          std::uint64_t mr_bytes_b = 0) {
    co_await a_.recover(th_a, mr_bytes_a);
    co_await b_.recover(th_b, mr_bytes_b);
    co_await sim::Delay{a_.device().host().engine(), link_.rtt()};
  }

  [[nodiscard]] QueuePair& a() noexcept { return a_; }
  [[nodiscard]] QueuePair& b() noexcept { return b_; }
  [[nodiscard]] net::Link& link() noexcept { return link_; }

 private:
  CompletionQueue a_scq_, a_rcq_, b_scq_, b_rcq_;
  QueuePair a_, b_;
  net::Link& link_;
};

}  // namespace e2e::rdma
