// RDMA-capable network adapter.
//
// A Device is one RoCE/InfiniBand port installed in a PCIe slot attached to
// a specific NUMA node of a Host. DMA engines move data between host memory
// and the wire with no CPU involvement: tx reads memory, rx writes memory,
// both charged against the host's memory channels (plus interconnect when
// the buffer is remote to the slot) and the slot's PCIe lanes.
#pragma once

#include <memory>
#include <string>

#include "model/host_profile.hpp"
#include "numa/host.hpp"
#include "sim/resource.hpp"

namespace e2e::rdma {

class Device {
 public:
  Device(numa::Host& host, model::NicProfile profile)
      : host_(host),
        profile_(std::move(profile)),
        pcie_tx_(host.engine(), model::gbps_to_bytes_per_s(profile_.pcie_gbps),
                 host.name() + "/" + profile_.name + "/pcie-tx"),
        pcie_rx_(host.engine(), model::gbps_to_bytes_per_s(profile_.pcie_gbps),
                 host.name() + "/" + profile_.name + "/pcie-rx") {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] numa::Host& host() noexcept { return host_; }
  [[nodiscard]] const model::NicProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] numa::NodeId node() const noexcept {
    return profile_.numa_node;
  }
  [[nodiscard]] const std::string& name() const noexcept {
    return profile_.name;
  }

  /// Books the host-side cost of a DMA and returns its completion time.
  /// `to_wire` reads from memory (transmit); otherwise writes to memory.
  sim::SimTime charge_dma(const numa::Placement& placement,
                          std::uint64_t bytes, bool to_wire) {
    const sim::SimTime mem_done =
        host_.charge_dma(placement, bytes, node(), to_wire);
    auto& pcie = to_wire ? pcie_tx_ : pcie_rx_;
    const sim::SimTime pcie_done =
        pcie.charge(static_cast<double>(bytes));
    return mem_done > pcie_done ? mem_done : pcie_done;
  }

 private:
  numa::Host& host_;
  model::NicProfile profile_;
  sim::Resource pcie_tx_;
  sim::Resource pcie_rx_;
};

}  // namespace e2e::rdma
