// Verbs-style vocabulary: protection domains, memory regions, work
// requests, work completions, completion queues.
//
// The shapes mirror the ibverbs API closely enough that code written
// against this layer reads like a real RDMA application: buffers must be
// registered before use, sends consume posted receives, RDMA READ/WRITE
// name a remote region the peer advertised, completions are reaped from
// CQs.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "mem/buffer.hpp"
#include "mem/msg_pool.hpp"
#include "metrics/cpu_usage.hpp"
#include "numa/thread.hpp"
#include "sim/channel.hpp"
#include "sim/task.hpp"

namespace e2e::rdma {

class Device;

enum class Opcode : std::uint8_t {
  kSend,      // two-sided send (consumes a posted receive)
  kWrite,     // one-sided RDMA Write (silent at the responder)
  kWriteImm,  // RDMA Write with immediate (consumes a receive, signals CQE)
  kRead,      // one-sided RDMA Read
};

constexpr const char* to_string(Opcode op) noexcept {
  switch (op) {
    case Opcode::kSend: return "send";
    case Opcode::kWrite: return "write";
    case Opcode::kWriteImm: return "write-imm";
    case Opcode::kRead: return "read";
  }
  return "?";
}

/// Advertised remote buffer (the moral equivalent of addr+rkey).
struct RemoteKey {
  mem::Buffer* buffer = nullptr;
};

struct SendWr {
  Opcode op = Opcode::kSend;
  std::uint64_t wr_id = 0;
  mem::Buffer* local = nullptr;  // registered local buffer
  std::uint64_t bytes = 0;       // payload length
  RemoteKey remote;              // for kWrite/kWriteImm/kRead
  std::uint32_t imm = 0;         // for kSend/kWriteImm (app header word)
  // Message content carried to the peer's completion (the simulation moves
  // no real bytes; protocol layers ship their headers/PDUs through this).
  mem::MsgPtr payload;
  // Integrity tag describing the payload identity (fault/integrity.hpp).
  // For kWrite/kWriteImm it is XORed into the remote buffer's content_tag
  // on delivery, so sinks can verify what actually landed.
  std::uint64_t content_tag = 0;
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  mem::Buffer* buf = nullptr;
};

struct WorkCompletion {
  Opcode op = Opcode::kSend;
  std::uint64_t wr_id = 0;
  std::uint64_t byte_len = 0;
  std::uint32_t imm = 0;
  bool success = true;
  // For receive completions of kSend/kWriteImm: the message content.
  mem::MsgPtr payload;

  /// Typed view of the payload.
  template <typename T>
  [[nodiscard]] const T* as() const noexcept {
    return payload.as<T>();
  }
};

/// Completion queue. Completions are delivered through a channel; wait()
/// suspends until one is available and charges the polling thread the CQE
/// processing cost.
class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Engine& eng) : ch_(eng) {}

  void push(WorkCompletion wc) { ch_.send(wc); }

  /// Reaps the next completion (suspends when empty).
  sim::Task<WorkCompletion> wait(numa::Thread& th) {
    auto wc = co_await ch_.recv();
    if (!wc) throw std::runtime_error("completion queue destroyed");
    co_await th.compute(th.host().costs().rdma_poll_cqe_cycles,
                        metrics::CpuCategory::kUserProto);
    co_return *wc;
  }

  /// Non-suspending poll (no CPU charge; used by tests).
  std::optional<WorkCompletion> try_poll() { return ch_.try_recv(); }

  /// Discards every pending (unreaped) completion. A rebooted host has no
  /// CQ memory: completions that landed before a crash must not replay
  /// into the consumers the restart epoch arms. Parked waiters are not
  /// disturbed — only queued entries go. Returns the number discarded.
  std::size_t discard_pending() {
    std::size_t n = 0;
    while (ch_.try_recv().has_value()) ++n;
    return n;
  }

  [[nodiscard]] std::size_t depth() const noexcept { return ch_.size(); }

 private:
  sim::Channel<WorkCompletion> ch_;
};

/// Protection domain: registration bookkeeping. Registration pins pages and
/// costs CPU proportional to the buffer size (ibv_reg_mr).
class ProtectionDomain {
 public:
  explicit ProtectionDomain(numa::Host& host) : host_(host) {}

  sim::Task<> register_buffer(numa::Thread& th, mem::Buffer& buf) {
    const double pages = static_cast<double>(buf.bytes) / 4096.0;
    co_await th.compute(
        pages * host_.costs().rdma_mr_register_cycles_per_page,
        metrics::CpuCategory::kUserProto);
    buf.registered = true;
  }

  static void require_registered(const mem::Buffer& buf) {
    if (!buf.registered)
      throw std::logic_error("RDMA operation on unregistered buffer");
  }

  [[nodiscard]] numa::Host& host() noexcept { return host_; }

 private:
  numa::Host& host_;
};

}  // namespace e2e::rdma
