// Queue pair: the RDMA connection endpoint.
//
// A connected QueuePair owns a send queue serviced by a NIC engine task.
// SEND/WRITE work requests are processed in order: tx DMA from the local
// registered buffer, wire serialization on the shared link direction, local
// CQE, then delivery to the peer after the propagation delay. RDMA READ is
// serviced out-of-band (multiple reads proceed concurrently), matching how
// the responder's read engine streams data without involving the remote
// CPU. Inbound traffic is handled by a receiver task: SENDs consume posted
// receives in FIFO order (waiting — i.e. RNR — when none are posted),
// WRITEs deposit silently, WRITE_IMM consumes a receive and signals a CQE.
//
// Lifetime: queue pairs must outlive the simulation run that uses them
// (engine tasks reference the QP; destroy scenario objects after the engine
// has drained or simply let them live for the process, as the apps and
// benches here do).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/link.hpp"
#include "rdma/device.hpp"
#include "rdma/verbs.hpp"
#include "sim/channel.hpp"
#include "sim/sync.hpp"
#include "stats/registry.hpp"
#include "trace/tracer.hpp"

namespace e2e::rdma {

/// QP lifecycle, collapsed to the two states the simulation distinguishes.
/// kRts (ready-to-send) is the operational state; kError models the verbs
/// error state a QP enters after a fatal fault (NIC failure, retry
/// exhaustion): posted sends flush with failed completions and inbound
/// traffic is dropped until recover() walks the QP back through
/// reset->init->RTR->RTS.
enum class QpState : std::uint8_t { kRts, kError };

constexpr const char* to_string(QpState s) noexcept {
  return s == QpState::kRts ? "RTS" : "ERR";
}

class QueuePair {
 public:
  QueuePair(Device& dev, CompletionQueue& send_cq, CompletionQueue& recv_cq);
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  /// Connects `a` and `b` over `link` (a transmits on direction 0) and
  /// starts both NIC engine tasks.
  static void connect(QueuePair& a, QueuePair& b, net::Link& link);

  /// Posts a work request from `th` (charges posting CPU, then returns;
  /// the NIC processes asynchronously). `wr` is taken by reference and
  /// copied into the queue — GCC 12's coroutine lowering double-destroys
  /// prvalue by-value arguments; await the post before releasing the WR.
  sim::Task<> post_send(numa::Thread& th, const SendWr& wr);
  sim::Task<> post_recv(numa::Thread& th, RecvWr wr);  // RecvWr is trivial

  /// Posts a chain of WRs behind one doorbell (ibv_post_send with a linked
  /// wr list): full posting CPU for the first WR plus the per-extra
  /// descriptor cost (rdma_doorbell_wr_cycles) for each one after it.
  /// Semantically identical to posting each WR individually — same
  /// validation, same in-order NIC processing, same flush behaviour on an
  /// error-state QP. The vectors are borrowed for the duration of the call
  /// (awaiting callers may reuse them after co_await returns).
  sim::Task<> post_send_batch(numa::Thread& th,
                              const std::vector<SendWr>& wrs);
  sim::Task<> post_recv_batch(numa::Thread& th,
                              const std::vector<RecvWr>& wrs);

  [[nodiscard]] Device& device() noexcept { return dev_; }
  [[nodiscard]] CompletionQueue& send_cq() noexcept { return scq_; }
  [[nodiscard]] CompletionQueue& recv_cq() noexcept { return rcq_; }
  [[nodiscard]] bool connected() const noexcept { return peer_ != nullptr; }
  [[nodiscard]] net::Link* link() noexcept { return link_; }

  /// Transitions the QP to the error state (NIC/QP fault): queued and
  /// future sends flush with failed completions, inbound messages are
  /// dropped. Signals error_event() so supervisors can react. Idempotent.
  void kill();

  /// Walks an errored QP back to RTS: reset->init->RTR->RTS bring-up CPU
  /// plus MR revalidation for `revalidate_bytes` of registered memory
  /// (re-pinning after a NIC reset). Signals ready_event(). No-op in kRts.
  sim::Task<> recover(numa::Thread& th, std::uint64_t revalidate_bytes = 0);

  /// Crash-stop semantics: kill() plus loss of all volatile QP state —
  /// every posted-but-unconsumed receive is discarded (a rebooted host
  /// has no receive ring). The owner must re-post receives after
  /// recover(). Idempotent like kill().
  void crash();

  [[nodiscard]] QpState state() const noexcept { return state_; }
  [[nodiscard]] bool alive() const noexcept {
    return state_ == QpState::kRts;
  }
  /// Set while the QP sits in kError; reset by recover().
  [[nodiscard]] sim::ManualEvent& error_event() noexcept {
    return error_event_;
  }
  /// Set while the QP is in kRts; reset by kill(). Retry loops wait on
  /// this before reposting after a QP death.
  [[nodiscard]] sim::ManualEvent& ready_event() noexcept {
    return ready_event_;
  }

  // Payload counters (tests/metrics).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_delivered() const noexcept {
    return bytes_delivered_;
  }
  [[nodiscard]] std::size_t posted_recvs() const noexcept {
    return recv_q_.size();
  }

  // Fault/recovery observability counters (tests/metrics).
  [[nodiscard]] std::uint64_t sends_flushed() const noexcept {
    return sends_flushed_;
  }
  [[nodiscard]] std::uint64_t inbound_dropped() const noexcept {
    return inbound_dropped_;
  }
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_;
  }
  [[nodiscard]] std::uint64_t recvs_dropped() const noexcept {
    return recvs_dropped_;
  }
  [[nodiscard]] std::uint64_t cqes_dropped() const noexcept {
    return cqes_dropped_;
  }

 private:
  void validate_send(const SendWr& wr) const;
  /// Post-charge half of post_send: books the WR with the NIC engine (or
  /// flushes it when the QP sits in the error state).
  void enqueue_send(const SendWr& wr);

  struct Delivery {
    Opcode op;
    std::uint64_t bytes;
    mem::Buffer* target;  // for kWrite/kWriteImm
    std::uint32_t imm;
    mem::MsgPtr payload;
    std::uint64_t content_tag;  // integrity tag XORed into `target`
    // Receiver epoch at send time (stamped as the message leaves the
    // peer). Wire flight and processing both take time — latency, RNR
    // waits, DMA — and the QP can die and recover underneath; a delivery
    // whose epoch is stale by the time it would land belongs to a dead
    // connection incarnation and is dropped (verbs PSN/QPN mismatch).
    std::uint64_t epoch = 0;
  };

  sim::Task<> sender_loop();
  sim::Task<> receiver_loop();
  sim::Task<> serve_read(SendWr wr);
  void deliver_after_latency(Delivery d, sim::SimDuration extra_latency);
  void fail_send(const SendWr& wr, sim::SimDuration delay, const char* what);
  void note_inbound_drop(const Delivery& d);

  [[nodiscard]] double header_per_mtu() const {
    return dev_.host().costs().rdma_header_bytes_per_mtu;
  }

  [[nodiscard]] net::Direction dir() const noexcept {
    return static_cast<net::Direction>(dir_);
  }

  Device& dev_;
  CompletionQueue& scq_;
  CompletionQueue& rcq_;
  QueuePair* peer_ = nullptr;
  net::Link* link_ = nullptr;
  int dir_ = 0;
  QpState state_ = QpState::kRts;
  // Bumped on every kill() and recover(): one count per state transition,
  // so a kill/recover cycle advances it twice and no delivery stamped
  // before or during the outage can match the recovered epoch.
  std::uint64_t epoch_ = 0;
  sim::Channel<SendWr> send_q_;
  sim::Channel<Delivery> inbound_;
  sim::Channel<RecvWr> recv_q_;
  sim::ManualEvent error_event_;
  sim::ManualEvent ready_event_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t sends_flushed_ = 0;
  std::uint64_t inbound_dropped_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t recvs_dropped_ = 0;
  std::uint64_t cqes_dropped_ = 0;
  // Trace handles for the NIC engine loops (null-tracer fast path skips all
  // tracing). Tracks, hot counters, and per-opcode span names resolve once
  // per tracer, so the per-WR paths do no string building or hashing.
  trace::CachedTrack trace_tx_;
  trace::CachedTrack trace_rx_;
  trace::CachedCounter ctr_wr_posted_;
  trace::CachedCounter ctr_bytes_posted_;
  trace::CachedCounter ctr_bytes_delivered_;
  trace::CachedCounter ctr_cq_completions_;
  trace::CachedName op_names_[4];  // indexed by Opcode
  trace::CachedName read_name_;    // async "read" spans

  trace::TrackId tx_track(trace::Tracer* tr);
  trace::TrackId rx_track(trace::Tracer* tr);
  trace::NameId op_name(trace::Tracer* tr, Opcode op) {
    return op_names_[static_cast<std::size_t>(op)].get(tr, to_string(op));
  }
  trace::Counter& cq_completions(trace::Tracer* tr) {
    return ctr_cq_completions_.get(tr, "rdma/cq_completions");
  }

  // Stats handles (null-registry fast path skips everything): one minted
  // entity per QP carrying the verbs-op latency histogram, the
  // outstanding-WR depth gauge, and the fault counters the fleet arc
  // wants per connection.
  stats::CachedEntity stats_ent_;
  stats::CachedHistogram hist_wr_;
  stats::CachedHistogram hist_read_;
  stats::CachedGauge gauge_sq_;
  stats::CachedCounter sctr_posted_;
  stats::CachedCounter sctr_flushed_;
  stats::CachedCounter sctr_dropped_;
  stats::CachedCode code_flush_;
  stats::CachedCode code_wire_fail_;
  stats::CachedCode code_kill_;
  stats::CachedCode code_recover_;
  stats::CachedCode code_rnr_;
  stats::CachedCode code_drop_;

  stats::EntityId stats_entity(stats::Registry* st) {
    return stats_ent_.get_lazy(st, stats::Layer::kRdma, [this] {
      return dev_.host().name() + "/qp";
    });
  }
};

}  // namespace e2e::rdma
