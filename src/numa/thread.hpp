// Simulated thread: the execution context protocol code runs in.
//
// A Thread is bound to one core (chosen by its Process's scheduling policy
// or pinned explicitly) and exposes awaitable operations that charge the
// host's resources with NUMA-correct costs:
//
//   compute()   - pure CPU work
//   copy()      - memcpy between two placements (CPU + both channels +
//                 interconnect for remote extents + optional coherence
//                 penalty on the destination)
//   mem_read()  - streaming touch/read of data
//   mem_write() - streaming write, with optional coherence penalty
//   zero_fill() - /dev/zero-style page clearing
//
// All CPU time is tagged with a metrics::CpuCategory and accounted on the
// core and on the owning Process.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/flat_table.hpp"
#include "metrics/cpu_usage.hpp"
#include "numa/host.hpp"
#include "numa/types.hpp"
#include "sim/task.hpp"

namespace e2e::numa {

class Process;

class Thread {
 public:
  /// Binds to a core chosen by `policy` (see Host::pick_core).
  Thread(Host& host, Process* proc, SchedPolicy policy, NodeId preferred);
  /// Pins to an explicit core.
  Thread(Host& host, Process* proc, CoreId pinned);

  [[nodiscard]] Host& host() noexcept { return host_; }
  [[nodiscard]] CoreId core_id() const noexcept { return core_; }
  [[nodiscard]] NodeId node() const noexcept {
    return host_.core(core_).node;
  }
  [[nodiscard]] Process* process() noexcept { return proc_; }

  /// Burns `cycles` of CPU in category `cat`.
  sim::Task<> compute(double cycles, metrics::CpuCategory cat);

  /// memcpy of `bytes` from `src` to `dst`. `dst_coherence` is
  /// kSharedRemote when the destination pages are cached by other nodes
  /// (write-invalidate traffic + stall cycles). `src_in_cache` skips the
  /// source's memory-channel traffic (data served from LLC — the iperf
  /// small-buffer cache effect of §2.3).
  sim::Task<> copy(std::uint64_t bytes, const Placement& src,
                   const Placement& dst, metrics::CpuCategory cat,
                   Coherence dst_coherence = Coherence::kPrivate,
                   bool src_in_cache = false);

  /// Streaming read (touch) of `bytes` from `src`.
  sim::Task<> mem_read(std::uint64_t bytes, const Placement& src,
                       metrics::CpuCategory cat);

  /// Streaming write of `bytes` to `dst`.
  sim::Task<> mem_write(std::uint64_t bytes, const Placement& dst,
                        metrics::CpuCategory cat,
                        Coherence coherence = Coherence::kPrivate);

  /// Kernel zero-fill of `bytes` into `dst` (reading /dev/zero).
  sim::Task<> zero_fill(std::uint64_t bytes, const Placement& dst,
                        metrics::CpuCategory cat);

  /// Books CPU cycles and memory traffic; returns overall completion time.
  /// Placement costs come from a per-thread cached plan (see CostPlan) —
  /// resolved once per (thread, extent layout), bit-identical to the
  /// uncached arithmetic.
  sim::SimTime book(double cycles, std::uint64_t read_bytes,
                    const Placement* src, std::uint64_t write_bytes,
                    const Placement* dst, metrics::CpuCategory cat,
                    Coherence dst_coherence);

 private:
  friend class Process;

  /// Cost ingredients for one memory layout, resolved against this
  /// thread's node: per-extent channel/interconnect handles and factors,
  /// coherence hops, and the summed remote fraction. Built once per
  /// (thread, extent layout); plans are keyed by a content hash of the
  /// extents (see PlanKeyTag) and verified against the stored `extents` on
  /// every lookup, so any number of Placement copies of the same layout
  /// share one plan and steady-state bookings recompute nothing.
  struct CostPlan {
    struct Traffic {
      sim::Resource* channel = nullptr;
      sim::Resource* qpi_read = nullptr;   // remote extents only
      sim::Resource* qpi_write = nullptr;  // remote extents only
      double fraction = 0.0;
      double channel_factor = 1.0;  // numa_remote_channel_factor if remote
    };
    struct CoherenceHop {
      sim::Resource* qpi = nullptr;
      double fraction = 0.0;
    };
    std::vector<Traffic> traffic;
    std::vector<CoherenceHop> coherence;
    double remote_fraction = 0.0;
    // The layout this plan was built from; checked on every cache hit so a
    // key collision or post-booking extent edit can never alias two
    // layouts to one plan.
    SmallVec<Placement::Extent, 4> extents;
  };

  /// CPU penalty multiplier for touching `p` from this thread's node.
  [[nodiscard]] double locality_penalty(const Placement& p) const noexcept;

  const CostPlan& plan_for(const Placement& p) const;
  void build_plan(CostPlan& plan, const Placement& p) const;

  void account(metrics::CpuCategory cat, sim::SimDuration ns);

  Host& host_;
  Process* proc_;
  CoreId core_;
  // Plans keyed by extent-content hash, one bucket per key (the bucket
  // scan verifies extents, so a 64-bit collision degrades to a two-entry
  // bucket instead of wrong costs). Sized by distinct layouts this thread
  // books — a handful per run — never by I/O count. The unique_ptr keeps
  // each plan's address stable across table growth. Mutable: plan caching
  // is invisible to callers (locality_penalty stays const).
  mutable mem::FlatMap<std::vector<std::unique_ptr<CostPlan>>> plans_;
};

}  // namespace e2e::numa
