// Core NUMA vocabulary: node/core ids, scheduling and memory policies,
// and memory Placement descriptors.
#pragma once

#include <cstdint>
#include <vector>

namespace e2e::numa {

using NodeId = int;
using CoreId = int;

inline constexpr NodeId kAnyNode = -1;

/// Thread scheduling policy.
///
/// kOsDefault models the stock Linux scheduler the paper compares against:
/// threads are placed without regard for NUMA locality (deterministic
/// round-robin over all cores in the model). kBindNode models `numactl
/// --cpunodebind`; kPinCore models explicit per-thread pinning.
enum class SchedPolicy : std::uint8_t { kOsDefault, kBindNode, kPinCore };

/// Memory allocation policy.
///
/// kFirstTouch is the Linux default (pages land on the toucher's node).
/// kBind models `numactl --membind` / tmpfs `mpol=bind`. kInterleave models
/// `mpol=interleave`, spreading pages round-robin over nodes.
enum class MemPolicy : std::uint8_t { kFirstTouch, kBind, kInterleave };

/// Cache-coherence situation of a memory write, decided by the owner of the
/// data (e.g. the tmpfs layer knows whether a file's pages are shared by
/// threads on other nodes).
enum class Coherence : std::uint8_t {
  kPrivate,       // pages only touched from the writing node
  kSharedRemote,  // pages cached/shared by other nodes: writes invalidate
};

/// Where a block of memory physically lives, as fractions per NUMA node.
/// An interleaved 1 MiB buffer on a 2-node host is {{0,0.5},{1,0.5}}.
struct Placement {
  struct Extent {
    NodeId node = 0;
    double fraction = 1.0;
  };
  std::vector<Extent> extents;

  static Placement on(NodeId node) { return Placement{{{node, 1.0}}}; }

  static Placement interleaved(int nodes) {
    Placement p;
    p.extents.reserve(static_cast<std::size_t>(nodes));
    for (NodeId n = 0; n < nodes; ++n)
      p.extents.push_back({n, 1.0 / nodes});
    return p;
  }

  /// Fraction of the memory that is NOT on `node`.
  [[nodiscard]] double remote_fraction(NodeId node) const noexcept {
    double f = 0.0;
    for (const auto& e : extents)
      if (e.node != node) f += e.fraction;
    return f;
  }

  [[nodiscard]] bool valid() const noexcept {
    double sum = 0.0;
    for (const auto& e : extents) {
      if (e.fraction < 0.0) return false;
      sum += e.fraction;
    }
    return !extents.empty() && sum > 0.999 && sum < 1.001;
  }
};

}  // namespace e2e::numa
