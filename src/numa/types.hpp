// Core NUMA vocabulary: node/core ids, scheduling and memory policies,
// and memory Placement descriptors.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <type_traits>
#include <utility>

namespace e2e::numa {

/// Vector with inline storage for the first `N` elements. Placements are
/// copied on every modeled I/O (into buffers, coroutine frames, plan
/// lookups); with the common 1–2 extent layouts held inline, those copies
/// never touch the allocator. Spills to the heap above `N` (wide
/// interleave) and stays there.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) data_[size_++] = v;
  }
  SmallVec(const SmallVec& o) { assign(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      size_ = 0;
      assign(o);
    }
    return *this;
  }
  SmallVec(SmallVec&& o) noexcept { steal(std::move(o)); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      size_ = 0;
      steal(std::move(o));
    }
    return *this;
  }
  ~SmallVec() = default;

  void reserve(std::size_t n) {
    if (n <= cap_) return;
    std::size_t cap = cap_;
    while (cap < n) cap *= 2;
    auto fresh = std::make_unique<T[]>(cap);
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = data_[i];
    heap_ = std::move(fresh);
    data_ = heap_.get();
    cap_ = cap;
  }

  void push_back(const T& v) {
    if (size_ == cap_) reserve(size_ + 1);
    data_[size_++] = v;
  }

  void clear() noexcept { size_ = 0; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T& front() noexcept { return data_[0]; }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

 private:
  void assign(const SmallVec& o) {
    reserve(o.size_);
    for (std::size_t i = 0; i < o.size_; ++i) data_[i] = o.data_[i];
    size_ = o.size_;
  }
  // Steals heap storage when the source spilled; inline contents copy.
  void steal(SmallVec&& o) noexcept {
    if (o.heap_ != nullptr) {
      heap_ = std::move(o.heap_);
      data_ = heap_.get();
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inline_;
      o.cap_ = N;
      o.size_ = 0;
    } else {
      for (std::size_t i = 0; i < o.size_; ++i) data_[i] = o.data_[i];
      size_ = o.size_;
      o.size_ = 0;
    }
  }

  T inline_[N] = {};
  std::unique_ptr<T[]> heap_;
  T* data_ = inline_;
  std::size_t cap_ = N;
  std::size_t size_ = 0;
};

using NodeId = int;
using CoreId = int;

inline constexpr NodeId kAnyNode = -1;

/// Thread scheduling policy.
///
/// kOsDefault models the stock Linux scheduler the paper compares against:
/// threads are placed without regard for NUMA locality (deterministic
/// round-robin over all cores in the model). kBindNode models `numactl
/// --cpunodebind`; kPinCore models explicit per-thread pinning.
enum class SchedPolicy : std::uint8_t { kOsDefault, kBindNode, kPinCore };

/// Memory allocation policy.
///
/// kFirstTouch is the Linux default (pages land on the toucher's node).
/// kBind models `numactl --membind` / tmpfs `mpol=bind`. kInterleave models
/// `mpol=interleave`, spreading pages round-robin over nodes.
enum class MemPolicy : std::uint8_t { kFirstTouch, kBind, kInterleave };

/// Cache-coherence situation of a memory write, decided by the owner of the
/// data (e.g. the tmpfs layer knows whether a file's pages are shared by
/// threads on other nodes).
enum class Coherence : std::uint8_t {
  kPrivate,       // pages only touched from the writing node
  kSharedRemote,  // pages cached/shared by other nodes: writes invalidate
};

/// Memoized content key for threads' cached cost plans (numa/thread.hpp).
/// The key is a deterministic hash of the extent list, computed lazily on
/// the first cost booking and cached in the placement. Keying plans by
/// CONTENT (not object identity) means the per-thread plan cache is
/// bounded by the number of distinct memory layouts in the model — code
/// that copies a Placement per operation (per-I/O buffer descriptors,
/// staging structs) converges on one shared cached plan instead of
/// growing the cache without bound. Copying resets the memo (the copy may
/// be edited before use; the hash is simply recomputed on its next
/// booking); moving keeps it. Plan lookups re-verify the stored extents
/// on every hit (numa/thread.cpp), so neither a hash collision nor an
/// in-place extent edit after booking can silently alias two layouts to
/// one plan.
struct PlanKeyTag {
  mutable std::uint64_t v = 0;

  PlanKeyTag() = default;
  PlanKeyTag(const PlanKeyTag&) noexcept {}
  PlanKeyTag& operator=(const PlanKeyTag&) noexcept {
    v = 0;
    return *this;
  }
  PlanKeyTag(PlanKeyTag&& o) noexcept : v(o.v) { o.v = 0; }
  PlanKeyTag& operator=(PlanKeyTag&& o) noexcept {
    v = o.v;
    o.v = 0;
    return *this;
  }

  /// The key, hashed from `extents` on first use and memoized. Pure
  /// function of the extent bytes — deterministic across runs.
  template <typename Extents>
  [[nodiscard]] std::uint64_t get(const Extents& extents) const noexcept {
    if (v == 0) v = hash(extents);
    return v;
  }

 private:
  /// splitmix64 finalizer.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  template <typename Extents>
  [[nodiscard]] static std::uint64_t hash(const Extents& extents) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const auto& e : extents) {
      h = mix(h ^ static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(e.node)));
      h = mix(h ^ std::bit_cast<std::uint64_t>(e.fraction));
    }
    return h == 0 ? 1 : h;  // 0 is the "not yet hashed" sentinel
  }
};

/// Where a block of memory physically lives, as fractions per NUMA node.
/// An interleaved 1 MiB buffer on a 2-node host is {{0,0.5},{1,0.5}}.
struct Placement {
  struct Extent {
    NodeId node = 0;
    double fraction = 1.0;
  };
  // Inline capacity 4: node counts modeled in-tree (2- and 4-socket hosts)
  // interleave without spilling.
  SmallVec<Extent, 4> extents;
  PlanKeyTag plan_key;

  static Placement on(NodeId node) { return Placement{{{node, 1.0}}, {}}; }

  static Placement interleaved(int nodes) {
    Placement p;
    p.extents.reserve(static_cast<std::size_t>(nodes));
    for (NodeId n = 0; n < nodes; ++n)
      p.extents.push_back({n, 1.0 / nodes});
    return p;
  }

  /// Content key for the cost-plan cache (see PlanKeyTag): hashed from the
  /// extents on first use, memoized afterwards.
  [[nodiscard]] std::uint64_t plan_key_value() const noexcept {
    return plan_key.get(extents);
  }

  /// Fraction of the memory that is NOT on `node`.
  [[nodiscard]] double remote_fraction(NodeId node) const noexcept {
    double f = 0.0;
    for (const auto& e : extents)
      if (e.node != node) f += e.fraction;
    return f;
  }

  [[nodiscard]] bool valid() const noexcept {
    double sum = 0.0;
    for (const auto& e : extents) {
      if (e.fraction < 0.0) return false;
      sum += e.fraction;
    }
    return !extents.empty() && sum > 0.999 && sum < 1.001;
  }
};

}  // namespace e2e::numa
