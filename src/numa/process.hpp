// Simulated process: a named group of threads with a shared NUMA policy.
//
// Maps to the unit `numactl` operates on: constructing a Process with
// SchedPolicy::kBindNode + MemPolicy::kBind on node N models
// `numactl --cpunodebind=N --membind=N <app>`, the static tuning the paper
// applies to the iSER target, RFTP and GridFTP. SchedPolicy::kOsDefault +
// MemPolicy::kFirstTouch models the untuned baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "numa/host.hpp"
#include "numa/thread.hpp"
#include "numa/types.hpp"

namespace e2e::numa {

struct NumaBinding {
  SchedPolicy sched = SchedPolicy::kOsDefault;
  MemPolicy mem = MemPolicy::kFirstTouch;
  NodeId node = kAnyNode;  // bind target for kBindNode / kBind

  /// numactl --cpunodebind=N --membind=N
  static NumaBinding bound(NodeId n) {
    return {SchedPolicy::kBindNode, MemPolicy::kBind, n};
  }
  /// Stock Linux scheduling + first-touch allocation.
  static NumaBinding os_default() { return {}; }
};

class Process {
 public:
  Process(Host& host, std::string name,
          NumaBinding binding = NumaBinding::os_default())
      : host_(host), name_(std::move(name)), binding_(binding) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Creates a thread placed per the process scheduling policy.
  /// `preferred` overrides the binding's node (for per-thread placement
  /// inside a bound process, e.g. one worker per NIC-local node).
  Thread& spawn_thread(NodeId preferred = kAnyNode) {
    const NodeId n = preferred != kAnyNode ? preferred : binding_.node;
    threads_.push_back(
        std::make_unique<Thread>(host_, this, binding_.sched, n));
    return *threads_.back();
  }

  /// Creates a thread pinned to an explicit core.
  Thread& spawn_pinned_thread(CoreId core) {
    threads_.push_back(std::make_unique<Thread>(host_, this, core));
    return *threads_.back();
  }

  /// Allocates memory under the process memory policy. `toucher` is the
  /// node of the thread that first touches the pages (first-touch policy);
  /// it also serves as the bind target when the process binding says
  /// "bind" without naming a node (per-thread numactl-style placement).
  Placement alloc(std::uint64_t bytes, NodeId toucher = kAnyNode) {
    const NodeId touch = toucher != kAnyNode ? toucher
                         : binding_.node != kAnyNode ? binding_.node
                                                     : 0;
    const NodeId bind_to = binding_.node != kAnyNode ? binding_.node : touch;
    return host_.alloc(bytes, binding_.mem, bind_to, touch);
  }

  [[nodiscard]] Host& host() noexcept { return host_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const NumaBinding& binding() const noexcept {
    return binding_;
  }
  [[nodiscard]] metrics::CpuUsage& usage() noexcept { return usage_; }
  [[nodiscard]] const metrics::CpuUsage& usage() const noexcept {
    return usage_;
  }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return threads_.size();
  }

 private:
  Host& host_;
  std::string name_;
  NumaBinding binding_;
  metrics::CpuUsage usage_;
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace e2e::numa
