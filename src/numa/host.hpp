// NUMA host model.
//
// A Host owns the simulated hardware of one machine from Table 1:
//  * per-node CPU cores (rate = core_ghz cycles/s each),
//  * per-node memory channels (rate = STREAM-class GB/s),
//  * a QPI-style socket interconnect (one Resource per direction),
//  * per-node allocation accounting,
//  * DMA charging for devices (NICs) attached to a PCIe slot on some node.
//
// Threads (numa/thread.hpp) execute on cores and charge these resources;
// devices charge memory channels + interconnect through charge_dma().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "model/host_profile.hpp"
#include "numa/types.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace e2e::numa {

struct Core {
  CoreId id = 0;
  NodeId node = 0;
  std::unique_ptr<sim::Resource> cycles;  // cycles/s
  metrics::CpuUsage usage;
};

class Host {
 public:
  Host(sim::Engine& eng, model::HostProfile profile);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] const model::HostProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const model::CostModel& costs() const noexcept {
    return profile_.costs;
  }
  [[nodiscard]] const std::string& name() const noexcept {
    return profile_.name;
  }

  [[nodiscard]] int node_count() const noexcept { return profile_.numa_nodes; }
  [[nodiscard]] int core_count() const noexcept {
    return static_cast<int>(cores_.size());
  }

  [[nodiscard]] Core& core(CoreId id) { return *cores_.at(id); }
  [[nodiscard]] const Core& core(CoreId id) const { return *cores_.at(id); }

  /// Memory channel (bandwidth) of one NUMA node.
  [[nodiscard]] sim::Resource& channel(NodeId n) { return *channels_.at(n); }

  /// Interconnect direction `from` -> `to` (from != to).
  [[nodiscard]] sim::Resource& interconnect(NodeId from, NodeId to);

  /// Canonical single-node placement for `n`, with stable identity for the
  /// host's whole lifetime. Hot paths that describe "memory on node n" per
  /// operation (e.g. kernel page-cache pages) must use this instead of
  /// minting a fresh Placement::on(n) — every fresh placement gets a new
  /// plan-cache identity on first booking (see PlanKeyTag), so per-op
  /// placements would grow threads' cost-plan caches without bound.
  [[nodiscard]] const Placement& node_placement(NodeId n) const {
    return node_placements_.at(static_cast<std::size_t>(n));
  }

  // --- allocation ---

  /// Allocates `bytes` under `policy`. `preferred` is the bind target for
  /// kBind; `toucher` is the first-touch node for kFirstTouch.
  Placement alloc(std::uint64_t bytes, MemPolicy policy, NodeId preferred,
                  NodeId toucher);
  void free(const Placement& p, std::uint64_t bytes) noexcept;
  [[nodiscard]] std::uint64_t used_bytes(NodeId n) const {
    return used_bytes_.at(n);
  }

  // --- DMA ---

  /// Books the memory-side traffic of a device DMA: `to_device` reads from
  /// memory (NIC tx), otherwise writes to memory (NIC rx). Charges the
  /// placement's memory channels and, for extents remote to `dev_node`,
  /// the interconnect. Returns the completion time of the slowest charge.
  sim::SimTime charge_dma(const Placement& p, std::uint64_t bytes,
                          NodeId dev_node, bool to_device);

  // --- scheduling ---

  /// Picks a core per policy. kOsDefault round-robins over all cores
  /// ignoring `preferred`; kBindNode round-robins within `preferred`.
  CoreId pick_core(SchedPolicy policy, NodeId preferred);

  /// Analytic STREAM-triad peak: sum of node channel bandwidths, in Gbps.
  [[nodiscard]] double stream_peak_gbps() const noexcept {
    return model::bytes_per_s_to_gbps(
        model::gBps_to_bytes_per_s(profile_.total_mem_gBps()));
  }

  /// Sum of all per-core usage (whole-host CPU accounting).
  [[nodiscard]] metrics::CpuUsage total_usage() const;

 private:
  sim::Engine& eng_;
  model::HostProfile profile_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<sim::Resource>> channels_;
  // interconnect_[from * nodes + to], empty Resource for from==to unused.
  std::vector<std::unique_ptr<sim::Resource>> interconnect_;
  std::vector<Placement> node_placements_;  // one canonical Placement per node
  std::vector<std::uint64_t> used_bytes_;
  int rr_all_ = 0;
  std::vector<int> rr_node_;
};

}  // namespace e2e::numa
