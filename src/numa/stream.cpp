#include "numa/stream.hpp"

#include <memory>

#include "metrics/cpu_usage.hpp"
#include "numa/process.hpp"
#include "sim/task.hpp"

namespace e2e::numa {

namespace {

sim::Task<> triad_worker(Thread& th, const StreamOptions& opts,
                         sim::SimTime deadline, std::uint64_t* bytes_moved) {
  auto& eng = th.host().engine();
  const Placement local = opts.numa_local
                              ? Placement::on(th.node())
                              : Placement::interleaved(th.host().node_count());
  while (eng.now() < deadline) {
    // Triad moves 3 streams per element: reads b and c, writes a.
    co_await th.mem_read(2 * opts.chunk_bytes, local,
                         metrics::CpuCategory::kOther);
    co_await th.mem_write(opts.chunk_bytes, local,
                          metrics::CpuCategory::kOther);
    *bytes_moved += 3 * opts.chunk_bytes;
  }
}

}  // namespace

StreamReport run_stream_triad(sim::Engine& eng, Host& host,
                              const StreamOptions& opts) {
  Process proc(host, "stream",
               opts.numa_local ? NumaBinding{SchedPolicy::kBindNode,
                                             MemPolicy::kFirstTouch, kAnyNode}
                               : NumaBinding::os_default());
  auto bytes_moved = std::make_unique<std::uint64_t>(0);
  const sim::SimTime start = eng.now();
  const sim::SimTime deadline = start + opts.duration;

  for (NodeId n = 0; n < host.node_count(); ++n)
    for (int t = 0; t < opts.threads_per_node; ++t) {
      Thread& th = proc.spawn_thread(n);
      sim::co_spawn(triad_worker(th, opts, deadline, bytes_moved.get()));
    }

  eng.run_until(deadline);
  // Let in-flight chunks complete so the byte count is consistent.
  eng.run();

  StreamReport r;
  r.bytes_moved = *bytes_moved;
  const double secs = sim::to_seconds(eng.now() - start);
  if (secs > 0) r.triad_gBps = static_cast<double>(r.bytes_moved) / secs / 1e9;
  r.triad_gbps = r.triad_gBps * 8.0;
  return r;
}

}  // namespace e2e::numa
