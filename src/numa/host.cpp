#include "numa/host.hpp"

#include <algorithm>
#include <stdexcept>

namespace e2e::numa {

Host::Host(sim::Engine& eng, model::HostProfile profile)
    : eng_(eng), profile_(std::move(profile)) {
  const int nodes = profile_.numa_nodes;
  if (nodes < 1) throw std::invalid_argument("host needs >= 1 NUMA node");

  for (NodeId n = 0; n < nodes; ++n) {
    for (int c = 0; c < profile_.cores_per_node; ++c) {
      auto core = std::make_unique<Core>();
      core->id = static_cast<CoreId>(cores_.size());
      core->node = n;
      core->cycles = std::make_unique<sim::Resource>(
          eng_, profile_.cycles_per_second(),
          profile_.name + "/core" + std::to_string(core->id));
      cores_.push_back(std::move(core));
    }
    channels_.push_back(std::make_unique<sim::Resource>(
        eng_, model::gBps_to_bytes_per_s(profile_.mem_gBps_per_node),
        profile_.name + "/mem" + std::to_string(n)));
  }

  interconnect_.resize(static_cast<std::size_t>(nodes) * nodes);
  for (NodeId a = 0; a < nodes; ++a)
    for (NodeId b = 0; b < nodes; ++b)
      if (a != b)
        interconnect_[static_cast<std::size_t>(a) * nodes + b] =
            std::make_unique<sim::Resource>(
                eng_, model::gBps_to_bytes_per_s(profile_.interconnect_gBps),
                profile_.name + "/qpi" + std::to_string(a) + "-" +
                    std::to_string(b));

  node_placements_.reserve(static_cast<std::size_t>(nodes));
  for (NodeId n = 0; n < nodes; ++n)
    node_placements_.push_back(Placement::on(n));

  used_bytes_.assign(static_cast<std::size_t>(nodes), 0);
  rr_node_.assign(static_cast<std::size_t>(nodes), 0);
}

sim::Resource& Host::interconnect(NodeId from, NodeId to) {
  if (from == to)
    throw std::invalid_argument("interconnect requires distinct nodes");
  return *interconnect_.at(static_cast<std::size_t>(from) * profile_.numa_nodes +
                           to);
}

Placement Host::alloc(std::uint64_t bytes, MemPolicy policy, NodeId preferred,
                      NodeId toucher) {
  Placement p;
  switch (policy) {
    case MemPolicy::kBind:
      p = Placement::on(preferred == kAnyNode ? 0 : preferred);
      break;
    case MemPolicy::kFirstTouch:
      p = Placement::on(toucher == kAnyNode ? 0 : toucher);
      break;
    case MemPolicy::kInterleave:
      p = Placement::interleaved(profile_.numa_nodes);
      break;
  }
  for (const auto& e : p.extents)
    used_bytes_.at(static_cast<std::size_t>(e.node)) +=
        static_cast<std::uint64_t>(static_cast<double>(bytes) * e.fraction);
  return p;
}

void Host::free(const Placement& p, std::uint64_t bytes) noexcept {
  for (const auto& e : p.extents) {
    auto& used = used_bytes_[static_cast<std::size_t>(e.node)];
    const auto share =
        static_cast<std::uint64_t>(static_cast<double>(bytes) * e.fraction);
    used -= std::min(used, share);
  }
}

sim::SimTime Host::charge_dma(const Placement& p, std::uint64_t bytes,
                              NodeId dev_node, bool to_device) {
  sim::SimTime done = eng_.now();
  for (const auto& e : p.extents) {
    const double share = static_cast<double>(bytes) * e.fraction;
    if (share <= 0.0) continue;
    const double channel_share =
        e.node != dev_node ? share * costs().numa_remote_channel_factor
                           : share;
    done = std::max(done, channel(e.node).charge(channel_share));
    if (e.node != dev_node) {
      auto& qpi = to_device ? interconnect(e.node, dev_node)
                            : interconnect(dev_node, e.node);
      done = std::max(done, qpi.charge(share));
    }
  }
  return done;
}

CoreId Host::pick_core(SchedPolicy policy, NodeId preferred) {
  switch (policy) {
    case SchedPolicy::kOsDefault: {
      const CoreId c = static_cast<CoreId>(rr_all_ % core_count());
      ++rr_all_;
      return c;
    }
    case SchedPolicy::kBindNode: {
      const NodeId n = preferred == kAnyNode ? 0 : preferred;
      auto& rr = rr_node_.at(static_cast<std::size_t>(n));
      const CoreId c =
          static_cast<CoreId>(n * profile_.cores_per_node +
                              rr % profile_.cores_per_node);
      ++rr;
      return c;
    }
    case SchedPolicy::kPinCore:
      // Pinning is expressed by the caller choosing the core directly;
      // fall back to node binding if used through this path.
      return pick_core(SchedPolicy::kBindNode, preferred);
  }
  return 0;
}

metrics::CpuUsage Host::total_usage() const {
  metrics::CpuUsage u;
  for (const auto& c : cores_) u.merge(c->usage);
  return u;
}

}  // namespace e2e::numa
