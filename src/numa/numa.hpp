// Umbrella header for the NUMA host model.
#pragma once

#include "numa/host.hpp"
#include "numa/process.hpp"
#include "numa/stream.hpp"
#include "numa/thread.hpp"
#include "numa/types.hpp"
