// STREAM-style memory bandwidth workload (McCalpin Triad).
//
// Reproduces the §2.3 measurement: multi-threaded Triad (a[i] = b[i] +
// s*c[i], i.e. 2 streamed reads + 1 streamed write per element) across all
// cores. With NUMA-local arrays the two-node hosts of Table 1 sustain
// ~50 GB/s (400 Gbps); interleaved/remote placement degrades this through
// the interconnect and the remote-touch penalty.
#pragma once

#include <cstdint>

#include "numa/host.hpp"
#include "numa/types.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace e2e::numa {

struct StreamOptions {
  int threads_per_node = 8;
  std::uint64_t chunk_bytes = 1 << 20;  // work quantum per loop iteration
  sim::SimDuration duration = sim::kSecond;
  /// true: arrays first-touch local to each thread (the tuned case);
  /// false: arrays interleaved across nodes (untuned).
  bool numa_local = true;
};

struct StreamReport {
  std::uint64_t bytes_moved = 0;  // total reads+writes
  double triad_gBps = 0.0;        // decimal GB/s
  double triad_gbps = 0.0;        // decimal Gbit/s
};

/// Runs the Triad workload on `host` for `opts.duration`, driving `eng`.
/// The engine must be otherwise idle; the call consumes simulated time.
StreamReport run_stream_triad(sim::Engine& eng, Host& host,
                              const StreamOptions& opts);

}  // namespace e2e::numa
