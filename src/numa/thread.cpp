#include "numa/thread.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <memory>

#include "check/audit.hpp"
#include "numa/process.hpp"
#include "sim/sync.hpp"

namespace e2e::numa {

Thread::Thread(Host& host, Process* proc, SchedPolicy policy, NodeId preferred)
    : host_(host), proc_(proc), core_(host.pick_core(policy, preferred)) {}

Thread::Thread(Host& host, Process* proc, CoreId pinned)
    : host_(host), proc_(proc), core_(pinned) {}

double Thread::locality_penalty(const Placement& p) const noexcept {
  const double remote = plan_for(p).remote_fraction;
  const double pen = host_.costs().numa_remote_penalty;
  return 1.0 + remote * (pen - 1.0);
}

void Thread::build_plan(CostPlan& plan, const Placement& p) const {
  const NodeId me = node();
  plan.traffic.clear();
  plan.coherence.clear();
  plan.traffic.reserve(p.extents.size());
  for (const auto& e : p.extents) {
    if (e.fraction <= 0.0) continue;  // can never produce a positive share
    CostPlan::Traffic t;
    t.channel = &host_.channel(e.node);
    t.fraction = e.fraction;
    if (e.node != me) {
      t.channel_factor = host_.costs().numa_remote_channel_factor;
      // Reads pull toward the thread's node, writes push away from it.
      t.qpi_read = &host_.interconnect(e.node, me);
      t.qpi_write = &host_.interconnect(me, e.node);
      plan.coherence.push_back({&host_.interconnect(e.node, me), e.fraction});
    }
    plan.traffic.push_back(t);
  }
  plan.remote_fraction = p.remote_fraction(me);
  plan.extents = p.extents;
}

namespace {

/// Bitwise layout equality — the notion the content hash is built on
/// (double compared by bit pattern, so a hit means the hash inputs match).
bool same_extents(const SmallVec<Placement::Extent, 4>& a,
                  const SmallVec<Placement::Extent, 4>& b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].node != b[i].node) return false;
    if (std::bit_cast<std::uint64_t>(a[i].fraction) !=
        std::bit_cast<std::uint64_t>(b[i].fraction))
      return false;
  }
  return true;
}

}  // namespace

const Thread::CostPlan& Thread::plan_for(const Placement& p) const {
  const std::uint64_t key = p.plan_key_value();
  auto* bucket = plans_.find(key);
  if (bucket == nullptr)
    bucket = &plans_.insert(key, {});
  // Verify the stored layout: a cache hit must mean "same extent bytes",
  // never "same hash". Buckets hold one plan outside of collisions.
  for (const auto& plan : *bucket)
    if (same_extents(plan->extents, p.extents)) return *plan;
  auto fresh = std::make_unique<CostPlan>();
  build_plan(*fresh, p);
  const CostPlan& ref = *fresh;
  bucket->push_back(std::move(fresh));
  return ref;
}

void Thread::account(metrics::CpuCategory cat, sim::SimDuration ns) {
  Core& core = host_.core(core_);
  core.usage.add(cat, ns);
  if (proc_) proc_->usage().add(cat, ns);
  if (auto* au = check::of(host_.engine()))
    au->on_cpu_charge(core.cycles.get(), cat, ns);
}

sim::SimTime Thread::book(double cycles, std::uint64_t read_bytes,
                          const Placement* src, std::uint64_t write_bytes,
                          const Placement* dst, metrics::CpuCategory cat,
                          Coherence dst_coherence) {
  auto& eng = host_.engine();
  auto& core = host_.core(core_);
  sim::SimTime done = eng.now();

  if (cycles > 0.0) {
    done = std::max(done, core.cycles->charge(cycles));
    account(cat, core.cycles->service_time(cycles));
  }

  // Placement costs come from the cached plan: channel/interconnect
  // handles and per-extent factors were resolved on the first booking of
  // this (thread, placement) pair; the arithmetic below is bit-identical
  // to the uncached per-extent walk it replaced.
  auto book_traffic = [&](const CostPlan& plan, std::uint64_t bytes,
                          bool write) {
    for (const auto& t : plan.traffic) {
      const double share = static_cast<double>(bytes) * t.fraction;
      if (share <= 0.0) continue;
      // share * 1.0 is bitwise `share` for the non-negative doubles here,
      // so local extents charge exactly what they used to.
      done = std::max(done, t.channel->charge(share * t.channel_factor));
      if (sim::Resource* qpi = write ? t.qpi_write : t.qpi_read)
        done = std::max(done, qpi->charge(share));
    }
  };

  if (src && read_bytes)
    book_traffic(plan_for(*src), read_bytes, /*write=*/false);
  if (dst && write_bytes) {
    const CostPlan& plan = plan_for(*dst);
    book_traffic(plan, write_bytes, /*write=*/true);
    if (dst_coherence == Coherence::kSharedRemote) {
      // Write-invalidate: every written line round-trips ownership over the
      // interconnect. Model as extra interconnect traffic (both directions
      // relative to the remote extents) — the stall cycles were added by
      // the caller via the coherence cycle constant.
      const double factor = host_.costs().coherence_interconnect_bytes_factor;
      for (const auto& c : plan.coherence) {
        const double share =
            static_cast<double>(write_bytes) * c.fraction * factor;
        if (share <= 0.0) continue;
        done = std::max(done, c.qpi->charge(share));
      }
    }
  }
  return done;
}

sim::Task<> Thread::compute(double cycles, metrics::CpuCategory cat) {
  const sim::SimTime done =
      book(cycles, 0, nullptr, 0, nullptr, cat, Coherence::kPrivate);
  co_await sim::until(host_.engine(), done);
}

sim::Task<> Thread::copy(std::uint64_t bytes, const Placement& src,
                         const Placement& dst, metrics::CpuCategory cat,
                         Coherence dst_coherence, bool src_in_cache) {
  const auto& cm = host_.costs();
  const double penalty =
      src_in_cache ? locality_penalty(dst)
                   : std::max(locality_penalty(src), locality_penalty(dst));
  double cycles =
      static_cast<double>(bytes) * cm.memcpy_cycles_per_byte * penalty;
  if (dst_coherence == Coherence::kSharedRemote)
    cycles += static_cast<double>(bytes) * cm.coherence_write_cycles_per_byte *
              dst.remote_fraction(node());
  const sim::SimTime done =
      book(cycles, src_in_cache ? 0 : bytes, &src, bytes, &dst, cat,
           dst_coherence);
  co_await sim::until(host_.engine(), done);
}

sim::Task<> Thread::mem_read(std::uint64_t bytes, const Placement& src,
                             metrics::CpuCategory cat) {
  const auto& cm = host_.costs();
  const double cycles = static_cast<double>(bytes) *
                        cm.mem_touch_cycles_per_byte * locality_penalty(src);
  const sim::SimTime done =
      book(cycles, bytes, &src, 0, nullptr, cat, Coherence::kPrivate);
  co_await sim::until(host_.engine(), done);
}

sim::Task<> Thread::mem_write(std::uint64_t bytes, const Placement& dst,
                              metrics::CpuCategory cat, Coherence coherence) {
  const auto& cm = host_.costs();
  double cycles = static_cast<double>(bytes) * cm.mem_touch_cycles_per_byte *
                  locality_penalty(dst);
  if (coherence == Coherence::kSharedRemote)
    cycles += static_cast<double>(bytes) * cm.coherence_write_cycles_per_byte *
              dst.remote_fraction(node());
  const sim::SimTime done =
      book(cycles, 0, nullptr, bytes, &dst, cat, coherence);
  co_await sim::until(host_.engine(), done);
}

sim::Task<> Thread::zero_fill(std::uint64_t bytes, const Placement& dst,
                              metrics::CpuCategory cat) {
  const auto& cm = host_.costs();
  const double cycles = static_cast<double>(bytes) *
                        cm.zero_fill_cycles_per_byte * locality_penalty(dst);
  const sim::SimTime done =
      book(cycles, 0, nullptr, bytes, &dst, cat, Coherence::kPrivate);
  co_await sim::until(host_.engine(), done);
}

}  // namespace e2e::numa
