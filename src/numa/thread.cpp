#include "numa/thread.hpp"

#include <algorithm>

#include "numa/process.hpp"
#include "sim/sync.hpp"

namespace e2e::numa {

Thread::Thread(Host& host, Process* proc, SchedPolicy policy, NodeId preferred)
    : host_(host), proc_(proc), core_(host.pick_core(policy, preferred)) {}

Thread::Thread(Host& host, Process* proc, CoreId pinned)
    : host_(host), proc_(proc), core_(pinned) {}

double Thread::locality_penalty(const Placement& p) const noexcept {
  const double remote = p.remote_fraction(node());
  const double pen = host_.costs().numa_remote_penalty;
  return 1.0 + remote * (pen - 1.0);
}

void Thread::account(metrics::CpuCategory cat, sim::SimDuration ns) {
  host_.core(core_).usage.add(cat, ns);
  if (proc_) proc_->usage().add(cat, ns);
}

sim::SimTime Thread::book(double cycles, std::uint64_t read_bytes,
                          const Placement* src, std::uint64_t write_bytes,
                          const Placement* dst, metrics::CpuCategory cat,
                          Coherence dst_coherence) {
  auto& eng = host_.engine();
  auto& core = host_.core(core_);
  sim::SimTime done = eng.now();

  if (cycles > 0.0) {
    done = std::max(done, core.cycles->charge(cycles));
    account(cat, core.cycles->service_time(cycles));
  }

  const NodeId me = node();
  auto book_traffic = [&](const Placement& p, std::uint64_t bytes,
                          bool write) {
    for (const auto& e : p.extents) {
      const double share = static_cast<double>(bytes) * e.fraction;
      if (share <= 0.0) continue;
      const bool remote = e.node != me;
      const double channel_share =
          remote ? share * host_.costs().numa_remote_channel_factor : share;
      done = std::max(done, host_.channel(e.node).charge(channel_share));
      if (remote) {
        // Data crosses the socket interconnect: reads pull toward the
        // thread's node, writes push away from it.
        auto& qpi = write ? host_.interconnect(me, e.node)
                          : host_.interconnect(e.node, me);
        done = std::max(done, qpi.charge(share));
      }
    }
  };

  if (src && read_bytes) book_traffic(*src, read_bytes, /*write=*/false);
  if (dst && write_bytes) {
    book_traffic(*dst, write_bytes, /*write=*/true);
    if (dst_coherence == Coherence::kSharedRemote) {
      // Write-invalidate: every written line round-trips ownership over the
      // interconnect. Model as extra interconnect traffic (both directions
      // relative to the remote extents) — the stall cycles were added by
      // the caller via the coherence cycle constant.
      const double factor = host_.costs().coherence_interconnect_bytes_factor;
      for (const auto& e : dst->extents) {
        if (e.node == me) continue;
        const double share =
            static_cast<double>(write_bytes) * e.fraction * factor;
        if (share <= 0.0) continue;
        done = std::max(done, host_.interconnect(e.node, me).charge(share));
      }
    }
  }
  return done;
}

sim::Task<> Thread::compute(double cycles, metrics::CpuCategory cat) {
  const sim::SimTime done =
      book(cycles, 0, nullptr, 0, nullptr, cat, Coherence::kPrivate);
  co_await sim::until(host_.engine(), done);
}

sim::Task<> Thread::copy(std::uint64_t bytes, const Placement& src,
                         const Placement& dst, metrics::CpuCategory cat,
                         Coherence dst_coherence, bool src_in_cache) {
  const auto& cm = host_.costs();
  const double penalty =
      src_in_cache ? locality_penalty(dst)
                   : std::max(locality_penalty(src), locality_penalty(dst));
  double cycles =
      static_cast<double>(bytes) * cm.memcpy_cycles_per_byte * penalty;
  if (dst_coherence == Coherence::kSharedRemote)
    cycles += static_cast<double>(bytes) * cm.coherence_write_cycles_per_byte *
              dst.remote_fraction(node());
  const sim::SimTime done =
      book(cycles, src_in_cache ? 0 : bytes, &src, bytes, &dst, cat,
           dst_coherence);
  co_await sim::until(host_.engine(), done);
}

sim::Task<> Thread::mem_read(std::uint64_t bytes, const Placement& src,
                             metrics::CpuCategory cat) {
  const auto& cm = host_.costs();
  const double cycles = static_cast<double>(bytes) *
                        cm.mem_touch_cycles_per_byte * locality_penalty(src);
  const sim::SimTime done =
      book(cycles, bytes, &src, 0, nullptr, cat, Coherence::kPrivate);
  co_await sim::until(host_.engine(), done);
}

sim::Task<> Thread::mem_write(std::uint64_t bytes, const Placement& dst,
                              metrics::CpuCategory cat, Coherence coherence) {
  const auto& cm = host_.costs();
  double cycles = static_cast<double>(bytes) * cm.mem_touch_cycles_per_byte *
                  locality_penalty(dst);
  if (coherence == Coherence::kSharedRemote)
    cycles += static_cast<double>(bytes) * cm.coherence_write_cycles_per_byte *
              dst.remote_fraction(node());
  const sim::SimTime done =
      book(cycles, 0, nullptr, bytes, &dst, cat, coherence);
  co_await sim::until(host_.engine(), done);
}

sim::Task<> Thread::zero_fill(std::uint64_t bytes, const Placement& dst,
                              metrics::CpuCategory cat) {
  const auto& cm = host_.costs();
  const double cycles = static_cast<double>(bytes) *
                        cm.zero_fill_cycles_per_byte * locality_penalty(dst);
  const sim::SimTime done =
      book(cycles, 0, nullptr, bytes, &dst, cat, Coherence::kPrivate);
  co_await sim::until(host_.engine(), done);
}

}  // namespace e2e::numa
