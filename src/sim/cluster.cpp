#include "sim/cluster.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <stdexcept>
#include <thread>
#include <utility>

namespace e2e::sim {

Cluster::Cluster(int workers) : workers_(workers < 1 ? 1 : workers) {}

Cluster::~Cluster() {
  for (Engine* e : shards_)
    if (e != nullptr) e->attach_cluster(nullptr, -1);
}

int Cluster::add(Engine& eng) {
  const int rank = static_cast<int>(shards_.size());
  shards_.push_back(&eng);
  outboxes_.push_back(std::make_unique<Outbox>());
  eng.attach_cluster(this, rank);
  return rank;
}

void Cluster::detach(Engine& eng) noexcept {
  for (Engine*& e : shards_)
    if (e == &eng) e = nullptr;
}

void Cluster::post(int src_rank, int dst_rank, SimTime t, EventFn fn) {
  if (!parallel_) {
    // Setup/teardown phases run single-threaded in exact global order;
    // deliver straight into the destination heap.
    shards_[dst_rank]->schedule_at(t, std::move(fn));
    return;
  }
  // Conservative-lookahead soundness: anything crossing a shard boundary
  // travels a declared net:: seam, so it lands at or past the horizon every
  // shard is currently executing toward.
  assert(t >= horizon_);
  Outbox& ob = *outboxes_[src_rank];
  ob.msgs.push_back(Msg{t, ob.next_seq++, dst_rank, std::move(fn)});
}

SimTime Cluster::min_next_event() const noexcept {
  SimTime m = kTimeInfinity;
  for (const Engine* e : shards_)
    if (e != nullptr && e->next_event_time() < m) m = e->next_event_time();
  return m;
}

void Cluster::deliver_outboxes() {
  // Merge order is (t, src_rank, seq) — the same key that orders event
  // dispatch — never wall-clock arrival order. Destination sequence
  // numbers are assigned here, between windows, so they are a pure
  // function of the logical schedule, not of worker interleaving.
  struct Keyed {
    SimTime t;
    int src;
    std::uint64_t seq;
    Msg* m;
  };
  std::vector<Keyed> keyed;
  for (int src = 0; src < static_cast<int>(outboxes_.size()); ++src)
    for (Msg& m : outboxes_[src]->msgs)
      keyed.push_back(Keyed{m.t, src, m.seq, &m});
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (Keyed& k : keyed) {
    if (shards_[k.m->dst] == nullptr) continue;  // dead shard: drop the msg
    Engine& dst = *shards_[k.m->dst];
    assert(k.t >= dst.now());
    dst.schedule_at(k.t, std::move(k.m->fn));
  }
  for (const auto& ob : outboxes_) ob->msgs.clear();
}

void Cluster::run_sequential() {
  if (shards_.empty()) return;
  deliver_outboxes();
  for (;;) {
    Engine* next = nullptr;
    for (Engine* e : shards_)  // earliest (t, rank) wins; rank = add order
      if (e != nullptr && !e->idle() &&
          (next == nullptr || e->next_event_time() < next->next_event_time()))
        next = e;
    if (next == nullptr) return;
    next->dispatch_one();
  }
}

void Cluster::run() {
  if (shards_.empty()) return;
  const int w = effective_workers();
  const int n = static_cast<int>(shards_.size());
  errors_.assign(shards_.size(), nullptr);
  parallel_ = true;

  std::barrier<> window_start(w + 1);
  std::barrier<> window_end(w + 1);
  bool stop = false;  // written by coordinator before window_start only

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(w));
  for (int wk = 0; wk < w; ++wk) {
    pool.emplace_back([this, wk, w, n, &window_start, &window_end, &stop] {
      for (;;) {
        window_start.arrive_and_wait();
        if (stop) return;
        // Static pinning: shard k always runs on worker k % w, so the
        // thread_local frame/message pools act as per-shard pools.
        for (int r = wk; r < n; r += w) {
          if (shards_[r] == nullptr) continue;
          try {
            shards_[r]->run_window(horizon_);
          } catch (...) {
            errors_[r] = std::current_exception();
          }
        }
        window_end.arrive_and_wait();
      }
    });
  }

  bool failed = false;
  while (!failed) {
    deliver_outboxes();
    const SimTime m = min_next_event();
    if (m == kTimeInfinity) break;
    horizon_ = lookahead_ == kTimeInfinity
                   ? kTimeInfinity
                   : Engine::saturating_add(m, lookahead_);
    ++windows_;
    window_start.arrive_and_wait();
    window_end.arrive_and_wait();
    for (const std::exception_ptr& e : errors_)
      if (e) failed = true;
  }
  stop = true;
  window_start.arrive_and_wait();
  for (std::thread& t : pool) t.join();
  parallel_ = false;
  if (failed) {
    deliver_outboxes();  // keep heaps consistent for post-mortem inspection
    for (const std::exception_ptr& e : errors_)  // lowest rank rethrows
      if (e) std::rethrow_exception(e);
  }
}

std::uint64_t Cluster::events_processed() const {
  std::uint64_t total = 0;
  for (const Engine* e : shards_)
    if (e != nullptr) total += e->events_processed();
  return total;
}

std::uint64_t Cluster::cross_posts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ob : outboxes_) total += ob->next_seq;
  return total;
}

}  // namespace e2e::sim
