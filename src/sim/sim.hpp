// Umbrella header for the simulation substrate.
#pragma once

#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/event_fn.hpp"
#include "sim/frame_pool.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
