// Message channel between simulation actors.
//
// Unbounded MPMC queue with suspending recv(). Receivers wake in FIFO order,
// scheduled through the engine at the current instant (deterministic).
// Backpressure, where the modelled protocol needs it, is expressed with
// explicit credits (sim::Semaphore) as in the real RDMA applications.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace e2e::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& eng) : eng_(eng) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a value. Never blocks. Returns false (dropping the value) if
  /// the channel is closed.
  bool send(T v) {
    if (closed_) return false;
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      w->result.emplace(std::move(v));
      detail::resume_via_engine(eng_, w->handle);
      return true;
    }
    items_.push_back(std::move(v));
    return true;
  }

  /// Closes the channel: pending recv() calls (beyond queued items) complete
  /// with std::nullopt.
  void close() {
    closed_ = true;
    while (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      detail::resume_via_engine(eng_, w->handle);
    }
  }

  /// Receives the next value, suspending while the channel is empty.
  /// Completes with std::nullopt once the channel is closed and drained.
  auto recv() { return RecvAwaiter{*this}; }

  /// Non-suspending receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] bool closed() const noexcept { return closed_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> result;
  };

  struct RecvAwaiter {
    Channel& ch;
    Waiter self{};

    bool await_ready() noexcept {
      return !ch.items_.empty() || ch.closed_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      self.handle = h;
      ch.waiters_.push_back(&self);
    }
    std::optional<T> await_resume() {
      if (self.result.has_value()) return std::move(self.result);
      if (!ch.items_.empty()) {
        T v = std::move(ch.items_.front());
        ch.items_.pop_front();
        return v;
      }
      return std::nullopt;  // closed and drained
    }
  };

  Engine& eng_;
  std::deque<T> items_;
  std::deque<Waiter*> waiters_;
  bool closed_ = false;
};

}  // namespace e2e::sim
