// Message channel between simulation actors.
//
// Unbounded MPMC queue with suspending recv(). Receivers wake in FIFO order,
// scheduled through the engine at the current instant (deterministic).
// Backpressure, where the modelled protocol needs it, is expressed with
// explicit credits (sim::Semaphore) as in the real RDMA applications.
//
// Waiter bookkeeping is an intrusive FIFO list: each suspended recv() links
// the Waiter node that lives in its own coroutine frame, so parking and
// waking a receiver touches no allocator. Queued items live in a
// RingQueue, which keeps its high-water storage instead of churning
// deque nodes at steady state.
#pragma once

#include <coroutine>
#include <cstddef>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/ring_queue.hpp"
#include "sim/sync.hpp"

namespace e2e::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& eng) : eng_(eng) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a value. Never blocks. Returns false (dropping the value) if
  /// the channel is closed.
  bool send(T v) {
    if (closed_) return false;
    if (wait_head_ != nullptr) {
      Waiter* w = pop_waiter();
      w->result.emplace(std::move(v));
      detail::resume_via_engine(eng_, w->handle);
      return true;
    }
    items_.push_back(std::move(v));
    return true;
  }

  /// Closes the channel: pending recv() calls (beyond queued items) complete
  /// with std::nullopt.
  void close() {
    closed_ = true;
    while (wait_head_ != nullptr) {
      Waiter* w = pop_waiter();
      detail::resume_via_engine(eng_, w->handle);
    }
  }

  /// Receives the next value, suspending while the channel is empty.
  /// Completes with std::nullopt once the channel is closed and drained.
  auto recv() { return RecvAwaiter{*this}; }

  /// Non-suspending receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] bool closed() const noexcept { return closed_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> result;
    Waiter* next = nullptr;
  };

  void push_waiter(Waiter* w) noexcept {
    if (wait_tail_ != nullptr)
      wait_tail_->next = w;
    else
      wait_head_ = w;
    wait_tail_ = w;
  }
  Waiter* pop_waiter() noexcept {
    Waiter* w = wait_head_;
    wait_head_ = w->next;
    if (wait_head_ == nullptr) wait_tail_ = nullptr;
    w->next = nullptr;
    return w;
  }

  struct RecvAwaiter {
    Channel& ch;
    Waiter self{};

    bool await_ready() noexcept {
      return !ch.items_.empty() || ch.closed_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      self.handle = h;
      ch.push_waiter(&self);
    }
    std::optional<T> await_resume() {
      if (self.result.has_value()) return std::move(self.result);
      if (!ch.items_.empty()) {
        T v = std::move(ch.items_.front());
        ch.items_.pop_front();
        return v;
      }
      return std::nullopt;  // closed and drained
    }
  };

  Engine& eng_;
  RingQueue<T> items_;
  Waiter* wait_head_ = nullptr;
  Waiter* wait_tail_ = nullptr;
  bool closed_ = false;
};

}  // namespace e2e::sim
