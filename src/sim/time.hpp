// Simulated-time primitives.
//
// All simulated clocks in the library are 64-bit nanosecond counts starting
// at 0 when an Engine is constructed. Helpers convert to/from seconds for
// reporting and rate arithmetic.
#pragma once

#include <cstdint>

namespace e2e::sim {

/// Simulated time in nanoseconds since engine start.
using SimTime = std::uint64_t;

/// Simulated duration in nanoseconds.
using SimDuration = std::uint64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000ULL;
inline constexpr SimDuration kMillisecond = 1'000'000ULL;
inline constexpr SimDuration kSecond = 1'000'000'000ULL;
inline constexpr SimDuration kMinute = 60 * kSecond;

/// Largest representable time; used as "never".
inline constexpr SimTime kTimeInfinity = ~SimTime{0};

/// Converts a simulated time/duration to (double) seconds.
constexpr double to_seconds(SimDuration t) noexcept {
  return static_cast<double>(t) / 1e9;
}

/// Converts (double) seconds to a simulated duration, saturating at 0.
constexpr SimDuration from_seconds(double seconds) noexcept {
  if (seconds <= 0.0) return 0;
  return static_cast<SimDuration>(seconds * 1e9);
}

namespace literals {
constexpr SimDuration operator""_ns(unsigned long long v) { return v; }
constexpr SimDuration operator""_us(unsigned long long v) {
  return v * kMicrosecond;
}
constexpr SimDuration operator""_ms(unsigned long long v) {
  return v * kMillisecond;
}
constexpr SimDuration operator""_s(unsigned long long v) { return v * kSecond; }
constexpr SimDuration operator""_min(unsigned long long v) {
  return v * kMinute;
}
}  // namespace literals

}  // namespace e2e::sim
