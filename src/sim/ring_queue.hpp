// Non-shrinking FIFO ring buffer.
//
// std::deque frees its 512-byte node whenever a pop crosses a node
// boundary and reallocates it on the next push, so a steady-state queue
// oscillating around a boundary churns the allocator forever. RingQueue
// grows (doubling, power-of-two capacity) and then never gives storage
// back: a queue that has reached its high-water mark performs no further
// allocator work. Used for the hot message queues (sim::Channel, protocol
// FIFOs); not a general deque replacement.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

namespace e2e::sim {

template <typename T>
class RingQueue {
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "raw char storage only guarantees fundamental alignment");

 public:
  RingQueue() = default;
  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;
  RingQueue(RingQueue&& o) noexcept
      : buf_(std::move(o.buf_)), cap_(o.cap_), head_(o.head_), size_(o.size_) {
    o.cap_ = o.head_ = o.size_ = 0;
  }
  RingQueue& operator=(RingQueue&& o) noexcept {
    if (this != &o) {
      clear();
      buf_ = std::move(o.buf_);
      cap_ = o.cap_;
      head_ = o.head_;
      size_ = o.size_;
      o.cap_ = o.head_ = o.size_ = 0;
    }
    return *this;
  }
  ~RingQueue() { clear(); }

  void push_back(T v) {
    if (size_ == cap_) grow();
    ::new (slot((head_ + size_) & (cap_ - 1))) T(std::move(v));
    ++size_;
  }

  /// Re-inserts at the head (undo of a pop_front). Same growth policy as
  /// push_back; used by the fast-forward replay to restore a partially
  /// consumed claim period when verification fails mid-period.
  void push_front(T v) {
    if (size_ == cap_) grow();
    head_ = (head_ + cap_ - 1) & (cap_ - 1);
    ::new (slot(head_)) T(std::move(v));
    ++size_;
  }

  [[nodiscard]] T& front() noexcept { return *slot(head_); }
  [[nodiscard]] const T& front() const noexcept { return *slot(head_); }

  void pop_front() noexcept {
    slot(head_)->~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  [[nodiscard]] T& back() noexcept {
    return *slot((head_ + size_ - 1) & (cap_ - 1));
  }
  [[nodiscard]] const T& back() const noexcept {
    return *slot((head_ + size_ - 1) & (cap_ - 1));
  }

  void pop_back() noexcept {
    slot((head_ + size_ - 1) & (cap_ - 1))->~T();
    --size_;
  }

  /// Destroys all elements; capacity is retained.
  void clear() noexcept {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  T* slot(std::size_t i) const noexcept {
    return reinterpret_cast<T*>(buf_.get() + i * sizeof(T));
  }

  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 16 : cap_ * 2;
    auto fresh = std::unique_ptr<unsigned char[]>(
        new unsigned char[new_cap * sizeof(T)]);  // NOLINT: raw storage
    for (std::size_t i = 0; i < size_; ++i) {
      T* src = slot((head_ + i) & (cap_ - 1));
      ::new (fresh.get() + i * sizeof(T)) T(std::move(*src));
      src->~T();
    }
    buf_ = std::move(fresh);
    cap_ = new_cap;
    head_ = 0;
  }

  std::unique_ptr<unsigned char[]> buf_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace e2e::sim
