#include "sim/frame_pool.hpp"

#include <new>
#include <type_traits>

namespace e2e::sim::detail {

namespace {

struct FreeNode {
  FreeNode* next;
};

/// Per-thread pool state. Deliberately trivially destructible (no teardown
/// hook): a frame freed after thread_local destructors have run — e.g. a
/// Task with static storage duration destroyed during static destruction —
/// must still find valid freelist storage, not a destroyed cache. Blocks
/// parked at thread exit are reclaimed by the OS with the process; under
/// ASan/LSan the pool is compiled out, so leak checking never sees them.
struct Cache {
  FreeNode* buckets[FramePool::kBuckets] = {};
  FramePool::Stats stats;

  void trim() noexcept {
    for (auto*& head : buckets) {
      while (head != nullptr) {
        FreeNode* n = head;
        head = n->next;
        ::operator delete(n);
        --stats.cached;
      }
    }
  }
};

static_assert(std::is_trivially_destructible_v<Cache>,
              "late frame frees rely on the cache never being destroyed");

Cache& cache() {
  thread_local Cache c;
  return c;
}

// bytes -> bucket index; callers have already excluded oversize requests.
std::size_t bucket_of(std::size_t bytes) noexcept {
  return (bytes + FramePool::kGranularity - 1) / FramePool::kGranularity - 1;
}

std::size_t bucket_bytes(std::size_t bucket) noexcept {
  return (bucket + 1) * FramePool::kGranularity;
}

}  // namespace

void* FramePool::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  Cache& c = cache();
  if (bytes > kMaxPooledBytes) {
    ++c.stats.oversize;
    return ::operator new(bytes);
  }
  const std::size_t b = bucket_of(bytes);
  if (FreeNode* n = c.buckets[b]) {
    c.buckets[b] = n->next;
    ++c.stats.reused;
    --c.stats.cached;
    return n;
  }
  ++c.stats.fresh;
  return ::operator new(bucket_bytes(b));
}

void FramePool::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooledBytes) {
    ::operator delete(p);
    return;
  }
  Cache& c = cache();
  auto* n = static_cast<FreeNode*>(p);
  const std::size_t b = bucket_of(bytes);
  n->next = c.buckets[b];
  c.buckets[b] = n;
  ++c.stats.cached;
}

FramePool::Stats FramePool::stats() noexcept { return cache().stats; }

void FramePool::trim() noexcept { cache().trim(); }

}  // namespace e2e::sim::detail
