// Size-bucketed freelist allocator for coroutine frames.
//
// Protocol layers spawn short-lived Task frames per chunk (compute/copy
// awaitables, per-IO server tasks, per-block transfers); at steady state
// the same handful of frame sizes churn millions of times per simulated
// run. FramePool recycles them: a freed frame goes on a per-size freelist
// and the next allocation of that size pops it back off — no malloc, no
// lock (the pool is thread_local).
//
// Threading contract (the sharded-engine audit, see sim/cluster.hpp): the
// thread_local pools are correct only because sim::Cluster pins shard k to
// worker k % workers for the whole parallel run — a shard's coroutines
// always allocate and free on the same worker, so each thread_local pool
// is effectively a per-shard pool. Two asymmetries are deliberately safe:
//   * frames allocated on the main thread during the single-threaded setup
//     phase are freed on the owning shard's worker and simply migrate into
//     that worker's freelist (blocks are plain operator-new storage with no
//     thread affinity, and pools are leaky until trim());
//   * a cross-shard read coroutine (sim::Hop) executes on two workers but
//     its frame is allocated and destroyed on the spawning shard's worker.
// If shards ever migrate between workers mid-run, these pools must move
// into the shard object; cluster_test.cpp pins the worker_of() contract.
//
// Frames above kMaxPooledBytes fall through to the global allocator.
// Under AddressSanitizer the pool is compiled out entirely so ASan keeps
// byte-exact use-after-free coverage of coroutine frames.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__SANITIZE_ADDRESS__)
#define E2E_SIM_FRAME_POOL 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define E2E_SIM_FRAME_POOL 0
#else
#define E2E_SIM_FRAME_POOL 1
#endif
#else
#define E2E_SIM_FRAME_POOL 1
#endif

namespace e2e::sim::detail {

/// True when frame pooling is compiled in (false under ASan).
inline constexpr bool kFramePoolEnabled = E2E_SIM_FRAME_POOL != 0;

class FramePool {
 public:
  /// Bucket granularity and the largest frame the pool recycles. Typical
  /// in-tree frames (Thread::compute/copy, per-chunk protocol tasks) are a
  /// few hundred bytes; 4 KiB covers the fattest with headroom.
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxPooledBytes = 4096;
  static constexpr std::size_t kBuckets = kMaxPooledBytes / kGranularity;

  static void* allocate(std::size_t bytes);
  static void deallocate(void* p, std::size_t bytes) noexcept;

  struct Stats {
    std::uint64_t fresh = 0;     // served by the global allocator
    std::uint64_t reused = 0;    // served from a freelist
    std::uint64_t oversize = 0;  // larger than kMaxPooledBytes
    std::uint64_t cached = 0;    // blocks currently parked on freelists
  };
  /// Counters for this thread's pool (tests, diagnostics).
  static Stats stats() noexcept;

  /// Returns every cached block to the global allocator.
  static void trim() noexcept;
};

}  // namespace e2e::sim::detail
