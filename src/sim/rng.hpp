// Deterministic random number generation for workloads.
//
// Every stochastic component takes an explicit Rng (or a seed) so that runs
// are reproducible; nothing in the library reads global entropy.
//
// Portability contract: the raw generator is std::mt19937_64, whose output
// sequence is fully specified by the standard, and every derived draw
// (bounded integers, canonical doubles, exponentials, Bernoulli trials) is
// computed here with explicit arithmetic. The std::*_distribution adaptors
// are deliberately NOT used: their mapping from generator output to values
// is implementation-defined, so the same seed produced different schedules
// on libstdc++ vs libc++ — silently voiding the byte-identical determinism
// contract. Golden-value tests (tests/sim/resource_test.cpp) pin the exact
// sequences so any future drift fails loudly.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>

namespace e2e::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : gen_(seed) {}

  /// Raw 64-bit draw from the underlying (standard-specified) generator.
  std::uint64_t next_u64() { return gen_(); }

  /// Uniform integer in [lo, hi] (inclusive). Bounded rejection sampling:
  /// draws are mapped with a plain modulo after rejecting the short final
  /// cycle of the 2^64 space, so every value in the span is exactly
  /// equally likely and the draw sequence is a pure function of the seed.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi && "Rng::uniform_u64: empty range");
    const std::uint64_t span = hi - lo;
    if (span == ~std::uint64_t{0}) return next_u64();  // full 2^64 range
    const std::uint64_t n = span + 1;
    // Reject draws from the final partial cycle [2^64 - 2^64 % n, 2^64):
    // threshold = 2^64 mod n, computed in 64-bit as (0 - n) mod n.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return lo + r % n;
    }
  }

  /// Uniform double in [lo, hi). Canonical mapping: the top 53 bits of one
  /// generator draw scale by 2^-53, the exact arithmetic every IEEE-754
  /// platform reproduces bit-identically.
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * canonical();
  }

  /// Exponential with the given mean (> 0), via inversion sampling:
  /// -mean * log(1 - U). One generator draw per value.
  double exponential(double mean) {
    return -mean * std::log(1.0 - canonical());
  }

  /// Bernoulli with probability p (one generator draw, also for p <= 0 or
  /// p >= 1, so the consumed-stream length never depends on p).
  bool chance(double p) { return canonical() < p; }

  /// Uniform index in [0, n). n must be > 0: there is no valid index into
  /// an empty range, so n == 0 asserts in debug builds and clamps to 0 in
  /// release builds (previously `uniform_u64(0, n - 1)` wrapped to a
  /// full-range uniform and returned a wild index).
  std::size_t index(std::size_t n) {
    assert(n > 0 && "Rng::index called with an empty range");
    if (n == 0) return 0;
    return static_cast<std::size_t>(uniform_u64(0, n - 1));
  }

 private:
  /// Uniform double in [0, 1) with 53 bits of precision.
  double canonical() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  std::mt19937_64 gen_;
};

}  // namespace e2e::sim
