// Deterministic random number generation for workloads.
//
// Every stochastic component takes an explicit Rng (or a seed) so that runs
// are reproducible; nothing in the library reads global entropy.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>

namespace e2e::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  /// Bernoulli with probability p.
  bool chance(double p) { return std::bernoulli_distribution(p)(gen_); }

  /// Uniform index in [0, n). n must be > 0: there is no valid index into
  /// an empty range, so n == 0 asserts in debug builds and clamps to 0 in
  /// release builds (previously `uniform_u64(0, n - 1)` wrapped to a
  /// full-range uniform and returned a wild index).
  std::size_t index(std::size_t n) {
    assert(n > 0 && "Rng::index called with an empty range");
    if (n == 0) return 0;
    return static_cast<std::size_t>(uniform_u64(0, n - 1));
  }

  std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace e2e::sim
