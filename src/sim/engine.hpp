// Discrete-event simulation engine.
//
// The Engine owns a time-ordered event heap. Events are arbitrary callbacks;
// higher layers almost never post callbacks directly — they await the
// awaitables in awaitables.hpp from coroutine Tasks instead.
//
// Determinism: events scheduled for the same instant fire in scheduling
// order (a monotonically increasing sequence number breaks ties), so a given
// program produces an identical event trace on every run.
//
// Hot path: the queue is an indexed 4-ary min-heap on one contiguous
// vector — shallower than a binary heap (fewer cache lines per sift) and
// reallocation-free at steady state because vector capacity is reused
// across push/pop cycles (see reserve()). The heap holds 24-byte POD keys
// {t, seq, slot}; the EventFn payloads sit in a parallel slot pool that a
// sift never touches, so reordering moves plain integers. Callbacks are
// sim::EventFn, which stores every in-tree capture inline, so
// schedule_at() never allocates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace e2e::sim {

class Cluster;
class Resource;

/// Observer interface the engine exposes to the tracing layer (trace/).
/// The engine itself never calls it; instrumented components check
/// Engine::trace_hook() on their hot paths and skip all tracing work when
/// it is null — the disabled case costs one pointer load per site.
class TraceHook {
 public:
  virtual ~TraceHook() = default;
  /// One FIFO service window [start, end) booked on `r` for `units` work.
  virtual void on_resource_service(const Resource& r, SimTime start,
                                   SimTime end, double units) = 0;
};

/// Observer interface the engine exposes to the invariant-audit layer
/// (check/). Sibling of TraceHook with the same contract: the engine never
/// calls it, instrumented components check Engine::audit_hook() and skip
/// all audit work when it is null. Methods default to no-ops so an auditor
/// overrides only the invariants it tracks. Implementations must observe
/// only — never schedule events — so an installed auditor cannot perturb
/// the simulated timeline.
class AuditHook {
 public:
  virtual ~AuditHook() = default;
  /// One FIFO service window [start, end) booked on `r` for `units` work.
  virtual void on_resource_service(const Resource& r, SimTime start,
                                   SimTime end, double units) {
    (void)r, (void)start, (void)end, (void)units;
  }
  /// `r` re-planned its queued backlog after a rate change: the drain time
  /// moves from `old_busy_until` to `new_busy_until` (see
  /// Resource::set_rate for the semantics).
  virtual void on_resource_replan(const Resource& r, SimTime old_busy_until,
                                  SimTime new_busy_until) {
    (void)r, (void)old_busy_until, (void)new_busy_until;
  }
  /// `r` is being destroyed; its counters are still readable. Auditors
  /// reconcile and drop per-resource state here so they never hold a
  /// dangling pointer.
  virtual void on_resource_destroyed(const Resource& r) { (void)r; }
  /// `r` absorbed `busy_delta` of service time and `units_delta` of work
  /// analytically (a fast-forwarded steady-state span, not FIFO windows).
  /// Auditors fold the deltas into their conservation ledgers so the exact
  /// busy-time reconciliation keeps holding on fast-forwarded runs.
  virtual void on_resource_fast_forward(const Resource& r,
                                        SimDuration busy_delta,
                                        double units_delta) {
    (void)r, (void)busy_delta, (void)units_delta;
  }
  /// The engine's virtual clock skipped `d` nanoseconds of modeled time
  /// without dispatching events (Engine::skip_time). Auditors widen any
  /// wall-clock-bounded invariants (utilization ceilings) by the skipped
  /// span.
  virtual void on_time_skip(SimDuration d) { (void)d; }
};

/// Marker base the engine exposes to the metrics layer (stats/). Unlike
/// TraceHook/AuditHook the engine never needs to call into it, so there are
/// no virtual methods beyond the destructor: the slot exists so instrumented
/// components can fetch the installed stats::Registry via stats::of() — a
/// single pointer load that is null when stats are disabled. Registries
/// observe only (counters, histograms, flight-recorder rings); they never
/// schedule events, so an installed registry cannot perturb the timeline.
class StatsHook {
 public:
  virtual ~StatsHook() = default;
};

class Engine {
 public:
  Engine() { heap_.reserve(kInitialReserve); }
  /// Detaches from its Cluster, if any, so shard and Cluster lifetimes may
  /// end in either order (defined in engine.cpp; needs cluster.hpp).
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time as seen by the event heap. Pending event
  /// timestamps, Resource::busy_until() and schedule_at() all live on this
  /// clock; a fast-forward never moves it (see skip_time()).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Current *modeled* time: now() plus every span absorbed by skip_time().
  /// Reporting-era quantities (elapsed transfer time, throughput-meter bin
  /// placement, end-of-run summaries) read this clock; event scheduling
  /// never does.
  [[nodiscard]] SimTime virtual_now() const noexcept {
    return saturating_add(now_, skipped_);
  }

  /// Total modeled time absorbed analytically by skip_time().
  [[nodiscard]] SimDuration skipped_time() const noexcept { return skipped_; }

  /// Records that `d` nanoseconds of modeled time were collapsed into a
  /// closed-form span (the hybrid fluid/event fast-forward). The event heap
  /// is deliberately NOT warped: every pending timestamp, coroutine-held
  /// `now() - t0` measurement interval and Resource busy horizon stays on
  /// the event-exact clock, so in-flight latency samples remain exact. Only
  /// virtual_now() — the reporting clock — advances. Standalone engines
  /// only: sharded (Cluster) runs derive window bounds from event times and
  /// must never skip.
  void skip_time(SimDuration d) noexcept {
    if (d <= 0 || cluster_ != nullptr) return;
    skipped_ += d;
    if (audit_hook_) audit_hook_->on_time_skip(d);
  }

  /// Schedules `fn` to run at absolute simulated time `t` (>= now()).
  /// Events in the past are clamped to now().
  void schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  void schedule_after(SimDuration delay, EventFn fn) {
    schedule_at(saturating_add(now_, delay), std::move(fn));
  }

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs all events with timestamp <= `t`, then advances the clock to `t`
  /// (even if the queue drained earlier). Returns the number of events
  /// dispatched, counted via the events_processed() delta so the count
  /// stays correct when stop() fires mid-run or an event re-enters
  /// run()/run_until().
  std::uint64_t run_until(SimTime t);

  /// Runs events for `d` more nanoseconds of simulated time.
  std::uint64_t run_for(SimDuration d) {
    return run_until(saturating_add(now_, d));
  }

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Total number of events dispatched since construction.
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  /// True when no events are pending.
  [[nodiscard]] bool idle() const noexcept { return heap_.empty(); }

  /// Timestamp of the next pending event, or kTimeInfinity when idle.
  [[nodiscard]] SimTime next_event_time() const noexcept {
    return heap_.empty() ? kTimeInfinity : heap_.front().t;
  }

  /// Pending events and the queue's current slot capacity. Capacity only
  /// grows: popping never shrinks the vector, so a run's steady-state
  /// working set stops reallocating once the high-water mark is reached.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return heap_.size();
  }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return heap_.capacity();
  }
  /// Pre-sizes the event queue for a known event population.
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
  }

  static SimTime saturating_add(SimTime a, SimDuration b) noexcept {
    const SimTime s = a + b;
    return s < a ? kTimeInfinity : s;
  }

  // --- sharded (Cluster) operation ---

  /// The Cluster this engine is registered with as a shard, or null when it
  /// runs standalone (the default and the `--shards 1` legacy path).
  [[nodiscard]] Cluster* cluster() const noexcept { return cluster_; }
  /// Shard rank within the cluster (-1 when standalone).
  [[nodiscard]] int rank() const noexcept { return rank_; }

  /// Schedules `fn` on `dst` at absolute time `t`. When both engines are
  /// shards of the same Cluster this routes through the cluster's
  /// deterministic (t, src_rank, seq) cross-shard merge; otherwise (same
  /// engine, or no cluster) it degenerates to dst.schedule_at(t, fn) — so
  /// callers on boundary seams can use it unconditionally.
  void cross_post(Engine& dst, SimTime t, EventFn fn);

  /// Runs all events with timestamp strictly < `horizon` (one conservative
  /// lookahead window). Does NOT advance the clock to the horizon: the next
  /// window's bound is derived from real pending-event times. Returns the
  /// number of events dispatched.
  std::uint64_t run_window(SimTime horizon);

  // --- tracing ---

  /// The installed tracer (null when tracing is disabled — the default).
  [[nodiscard]] TraceHook* trace_hook() const noexcept { return trace_hook_; }
  void set_trace_hook(TraceHook* h) noexcept { trace_hook_ = h; }

  /// The installed invariant auditor (null when auditing is disabled — the
  /// default).
  [[nodiscard]] AuditHook* audit_hook() const noexcept { return audit_hook_; }
  void set_audit_hook(AuditHook* h) noexcept { audit_hook_ = h; }

  /// The installed stats registry (null when stats are disabled).
  [[nodiscard]] StatsHook* stats_hook() const noexcept { return stats_hook_; }
  void set_stats_hook(StatsHook* h) noexcept { stats_hook_ = h; }

  /// Every live Resource built on this engine, in construction order.
  /// Deterministic: construction order is program order.
  [[nodiscard]] const std::vector<Resource*>& resources() const noexcept {
    return resources_;
  }
  void register_resource(Resource* r) { resources_.push_back(r); }
  void deregister_resource(Resource* r) noexcept {
    if (audit_hook_) audit_hook_->on_resource_destroyed(*r);
    for (auto it = resources_.begin(); it != resources_.end(); ++it)
      if (*it == r) {
        resources_.erase(it);
        return;
      }
  }

 private:
  friend class Cluster;  // run_sequential() drives dispatch_one() directly

  static constexpr std::size_t kArity = 4;
  static constexpr std::size_t kInitialReserve = 1024;

  /// Heap entry: ordering key plus the index of the EventFn in slots_.
  /// Trivially copyable, so sift moves are plain 24-byte copies.
  struct Event {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<Event>);

  /// Min-heap order on (t, seq): earlier time first, scheduling order
  /// within the same instant.
  static bool before(const Event& a, const Event& b) noexcept {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  std::uint32_t claim_slot(EventFn&& fn);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void dispatch_one();
  void attach_cluster(Cluster* c, int rank) noexcept {
    cluster_ = c;
    rank_ = rank;
  }

  std::vector<Event> heap_;
  std::vector<EventFn> slots_;             // payloads, indexed by Event::slot
  std::vector<std::uint32_t> free_slots_;  // recycled slot indices
  TraceHook* trace_hook_ = nullptr;
  AuditHook* audit_hook_ = nullptr;
  StatsHook* stats_hook_ = nullptr;
  std::vector<Resource*> resources_;
  Cluster* cluster_ = nullptr;
  int rank_ = -1;
  SimTime now_ = 0;
  SimDuration skipped_ = 0;  // modeled time absorbed by skip_time()
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace e2e::sim
