// Discrete-event simulation engine.
//
// The Engine owns a time-ordered event heap. Events are arbitrary callbacks;
// higher layers almost never post callbacks directly — they await the
// awaitables in awaitables.hpp from coroutine Tasks instead.
//
// Determinism: events scheduled for the same instant fire in scheduling
// order (a monotonically increasing sequence number breaks ties), so a given
// program produces an identical event trace on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace e2e::sim {

class Resource;

/// Observer interface the engine exposes to the tracing layer (trace/).
/// The engine itself never calls it; instrumented components check
/// Engine::trace_hook() on their hot paths and skip all tracing work when
/// it is null — the disabled case costs one pointer load per site.
class TraceHook {
 public:
  virtual ~TraceHook() = default;
  /// One FIFO service window [start, end) booked on `r` for `units` work.
  virtual void on_resource_service(const Resource& r, SimTime start,
                                   SimTime end, double units) = 0;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute simulated time `t` (>= now()).
  /// Events in the past are clamped to now().
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  void schedule_after(SimDuration delay, std::function<void()> fn) {
    schedule_at(saturating_add(now_, delay), std::move(fn));
  }

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs all events with timestamp <= `t`, then advances the clock to `t`
  /// (even if the queue drained earlier). Returns the number of events run.
  std::uint64_t run_until(SimTime t);

  /// Runs events for `d` more nanoseconds of simulated time.
  std::uint64_t run_for(SimDuration d) {
    return run_until(saturating_add(now_, d));
  }

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Total number of events dispatched since construction.
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  /// True when no events are pending.
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

  /// Timestamp of the next pending event, or kTimeInfinity when idle.
  [[nodiscard]] SimTime next_event_time() const noexcept {
    return queue_.empty() ? kTimeInfinity : queue_.top().t;
  }

  static SimTime saturating_add(SimTime a, SimDuration b) noexcept {
    const SimTime s = a + b;
    return s < a ? kTimeInfinity : s;
  }

  // --- tracing ---

  /// The installed tracer (null when tracing is disabled — the default).
  [[nodiscard]] TraceHook* trace_hook() const noexcept { return trace_hook_; }
  void set_trace_hook(TraceHook* h) noexcept { trace_hook_ = h; }

  /// Every live Resource built on this engine, in construction order.
  /// Deterministic: construction order is program order.
  [[nodiscard]] const std::vector<Resource*>& resources() const noexcept {
    return resources_;
  }
  void register_resource(Resource* r) { resources_.push_back(r); }
  void deregister_resource(Resource* r) noexcept {
    for (auto it = resources_.begin(); it != resources_.end(); ++it)
      if (*it == r) {
        resources_.erase(it);
        return;
      }
  }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    // std::function is stored out of line so Event moves cheaply in the heap.
    mutable std::function<void()> fn;
    bool operator>(const Event& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void dispatch_one();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  TraceHook* trace_hook_ = nullptr;
  std::vector<Resource*> resources_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace e2e::sim
