// Coroutine task type for simulation actors.
//
// Task<T> is a lazy coroutine: the body does not start until the task is
// either co_awaited by another task or detached onto the engine with
// co_spawn(). Protocol logic throughout the library is written as Tasks that
// await simulated time, resources, and channels.
//
// Lifetime rules:
//  * An awaited Task is owned by the Task object; the frame is destroyed
//    when the Task object goes out of scope (after completion).
//  * A spawned (detached) Task owns itself; the frame self-destroys at
//    final suspend. An exception escaping a detached task terminates the
//    program (mirroring an escaped exception on a real thread).
#pragma once

#include <coroutine>
#include <cstdio>
#include <exception>
#include <utility>

#include "sim/frame_pool.hpp"

namespace e2e::sim {

template <typename T>
class Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto& p = h.promise();
    if (p.detached) {
      if (p.exception) {
        std::fputs("e2e::sim: exception escaped a detached Task\n", stderr);
        // Rethrow inside this noexcept frame: terminate() fires with the
        // exception active, so the runtime prints its type and what().
        std::rethrow_exception(p.exception);
      }
      h.destroy();
      return std::noop_coroutine();
    }
    return p.continuation ? p.continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};
  bool detached = false;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }

#if E2E_SIM_FRAME_POOL
  // Coroutine frames route through the size-bucketed freelist: per-chunk
  // tasks recycle their frames instead of hitting malloc. The sized delete
  // is the one the coroutine machinery selects; the unsized form is the
  // mandated fallback and simply forgoes recycling.
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::deallocate(p, n);
  }
  static void operator delete(void* p) noexcept { ::operator delete(p); }
#endif
};

template <typename T>
struct Promise : PromiseBase {
  T value{};
  Task<T> get_return_object() noexcept;
  void return_value(T v) noexcept(std::is_nothrow_move_assignable_v<T>) {
    value = std::move(v);
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiting a Task starts it (symmetric transfer) and resumes the awaiter
  /// when the task completes, propagating exceptions and the return value.
  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        if (h.promise().exception)
          std::rethrow_exception(h.promise().exception);
        if constexpr (!std::is_void_v<T>) return std::move(h.promise().value);
      }
    };
    return Awaiter{handle_};
  }

  /// Detaches the task: the frame becomes self-owning and starts running
  /// immediately (until its first suspension point). Used by co_spawn().
  void detach_and_start() {
    handle_type h = std::exchange(handle_, nullptr);
    h.promise().detached = true;
    h.resume();
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  handle_type handle_ = nullptr;
};

namespace detail {
template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}
inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>{std::coroutine_handle<Promise<void>>::from_promise(*this)};
}
}  // namespace detail

/// Launches `t` as an independent actor. The task starts synchronously and
/// runs until its first suspension point; thereafter the simulation engine
/// drives it. The frame frees itself on completion.
inline void co_spawn(Task<void> t) { t.detach_and_start(); }

}  // namespace e2e::sim
