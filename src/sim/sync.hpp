// Synchronization primitives for simulation coroutines.
//
// All wake-ups are funnelled through the Engine (scheduled at the current
// instant) rather than resumed inline. This bounds stack depth and keeps
// resume ordering deterministic: waiters wake in FIFO order at the same
// simulated timestamp.
//
// Waiters are parked on intrusive FIFO lists whose nodes live in the
// awaiting coroutine frames (valid for exactly as long as the coroutine is
// suspended), so suspending and waking never allocates.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>

#include "sim/engine.hpp"

namespace e2e::sim {

namespace detail {
inline void resume_via_engine(Engine& eng, std::coroutine_handle<> h) {
  eng.schedule_after(0, [h] { h.resume(); });
}

/// One parked coroutine. Lives in the awaiter object inside the suspended
/// coroutine's frame.
struct WaitNode {
  std::coroutine_handle<> handle;
  WaitNode* next = nullptr;
};

/// Intrusive FIFO of WaitNodes.
class WaitList {
 public:
  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push(WaitNode* n) noexcept {
    if (tail_ != nullptr)
      tail_->next = n;
    else
      head_ = n;
    tail_ = n;
    ++size_;
  }

  WaitNode* pop() noexcept {
    WaitNode* n = head_;
    head_ = n->next;
    if (head_ == nullptr) tail_ = nullptr;
    n->next = nullptr;
    --size_;
    return n;
  }

 private:
  WaitNode* head_ = nullptr;
  WaitNode* tail_ = nullptr;
  std::size_t size_ = 0;
};
}  // namespace detail

/// Suspends the awaiting coroutine for a simulated duration.
/// Usage: `co_await Delay{engine, 5 * kMicrosecond};`
struct Delay {
  Engine& engine;
  SimDuration duration;

  bool await_ready() const noexcept { return duration == 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule_after(duration, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// Awaitable that completes at absolute simulated time `t` (immediately if
/// t <= now). Used to join fire-and-forget Resource::charge() bookings.
inline Delay until(Engine& eng, SimTime t) {
  return Delay{eng, t > eng.now() ? t - eng.now() : 0};
}

/// Moves the awaiting coroutine onto another engine: suspends on `from` and
/// resumes on `to` at absolute time `t`. When both engines are shards of the
/// same sim::Cluster the resume travels the deterministic cross-shard merge
/// (so `t` must be at least one lookahead past `from.now()` — in practice,
/// the latency of the net:: link being modelled); otherwise it degenerates
/// to a plain schedule on `to`. After resumption every suspension and all
/// touched state must belong to `to`'s shard until the coroutine hops back.
struct Hop {
  Engine& from;
  Engine& to;
  SimTime t;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    from.cross_post(to, t, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// Manual-reset event. wait() suspends until set() is called; once set,
/// wait() completes immediately until reset().
class ManualEvent {
 public:
  explicit ManualEvent(Engine& eng) : eng_(eng) {}

  void set() {
    set_ = true;
    while (!waiters_.empty())
      detail::resume_via_engine(eng_, waiters_.pop()->handle);
  }
  void reset() noexcept { set_ = false; }
  [[nodiscard]] bool is_set() const noexcept { return set_; }

  auto wait() {
    struct Awaiter {
      ManualEvent& ev;
      detail::WaitNode self{};
      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        self.handle = h;
        ev.waiters_.push(&self);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& eng_;
  detail::WaitList waiters_;
  bool set_ = false;
};

/// Counting semaphore. Used throughout for credit/token flow control.
class Semaphore {
 public:
  Semaphore(Engine& eng, std::int64_t initial) : eng_(eng), count_(initial) {}

  /// Releases `n` permits, waking waiters FIFO.
  void release(std::int64_t n = 1) {
    count_ += n;
    while (count_ > 0 && !waiters_.empty()) {
      --count_;
      detail::resume_via_engine(eng_, waiters_.pop()->handle);
    }
  }

  /// Acquires one permit, suspending until available.
  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      detail::WaitNode self{};
      bool await_ready() noexcept {
        if (s.count_ > 0 && s.waiters_.empty()) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        self.handle = h;
        s.waiters_.push(&self);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  [[nodiscard]] bool try_acquire() noexcept {
    if (count_ > 0 && waiters_.empty()) {
      --count_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::int64_t available() const noexcept { return count_; }
  [[nodiscard]] std::size_t waiting() const noexcept {
    return waiters_.size();
  }

 private:
  Engine& eng_;
  std::int64_t count_;
  detail::WaitList waiters_;
};

/// Join-point for a dynamic set of tasks (Go-style WaitGroup).
class WaitGroup {
 public:
  explicit WaitGroup(Engine& eng) : eng_(eng) {}

  void add(std::int64_t n = 1) noexcept { count_ += n; }
  void done(std::int64_t n = 1) {
    count_ -= n;
    if (count_ <= 0) {
      while (!waiters_.empty())
        detail::resume_via_engine(eng_, waiters_.pop()->handle);
    }
  }

  auto wait() {
    struct Awaiter {
      WaitGroup& wg;
      detail::WaitNode self{};
      bool await_ready() const noexcept { return wg.count_ <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        self.handle = h;
        wg.waiters_.push(&self);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  [[nodiscard]] std::int64_t pending() const noexcept { return count_; }

 private:
  Engine& eng_;
  std::int64_t count_ = 0;
  detail::WaitList waiters_;
};

}  // namespace e2e::sim
