// Small-buffer-optimized event callback for the simulation engine.
//
// EventFn replaces std::function<void()> on the engine's hot path. Every
// in-tree event capture must fit in the inline buffer — enforced with a
// static_assert at the construction site, so adding an oversized capture
// fails the build instead of silently heap-allocating. schedule_at()
// therefore never touches the allocator, no matter what it is handed.
//
// Contributor rule: keep event captures at or below kInlineBytes (a handful
// of pointers / integers / one shared_ptr payload). If a capture outgrows
// the buffer, move the bulky state behind a pointer the event borrows or
// owns, or widen kInlineBytes deliberately (it is part of the Event memory
// footprint: every slot in the event heap carries this many bytes).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace e2e::sim {

class EventFn {
 public:
  /// Inline capture capacity. Sized for the largest in-tree capture (an
  /// rdma::Delivery plus a pointer); the static_assert below keeps it
  /// honest.
  static constexpr std::size_t kInlineBytes = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule site
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "event capture exceeds EventFn inline storage; shrink the "
                  "capture (see event_fn.hpp header comment)");
    static_assert(alignof(Fn) <= kInlineAlign,
                  "event capture over-aligned for EventFn inline storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event captures must be nothrow-move-constructible (the "
                  "event heap relocates them)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::kOps;
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into dst from src and destroys src, in one call so
    // heap sift operations pay a single indirect call per relocation.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  struct OpsFor {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy};
  };

  void move_from(EventFn& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, o.storage_);
      o.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace e2e::sim
