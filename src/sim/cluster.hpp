// Conservative parallel simulation over per-shard engines.
//
// A Cluster coordinates several sim::Engine instances ("shards" — one per
// host or host group), each owning its own event heap, EventFn slot pool,
// and trace/stats/check sinks. Shards advance in lockstep windows derived
// from the minimum cross-shard net:: link latency L (the lookahead): every
// window runs each shard's events with t < horizon, where
//
//   horizon = min(next event time across all shards) + L.
//
// Any message a shard emits toward another shard during a window travels a
// net:: link, so it arrives at t_send + link_latency >= min + L = horizon —
// provably after the window every shard is executing. Cross-shard sends are
// therefore buffered in per-source outboxes and merged into the destination
// shard's heap at the next window boundary, sorted by (t, src_shard, seq).
// That key — never wall-clock arrival order — decides the destination
// engine's tie-break sequence numbers, so the executed event schedule is a
// pure function of the seed and the topology: the same run is bit-identical
// with 1 worker thread or 8.
//
// Threading contract (see frame_pool.hpp): shard k is pinned to worker
// k % workers for the whole parallel run, so the thread_local frame/message
// pools behave as per-shard pools — a coroutine frame is always allocated
// and recycled on its shard's worker. Frames allocated during the
// single-threaded setup phase migrate into a worker's pool on first free,
// which is safe (the pools are plain malloc-backed freelists).
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace e2e::sim {

class Cluster {
 public:
  /// `workers` parallel worker threads drive the shards (clamped to
  /// [1, shard count] at run() time). The worker count never changes the
  /// executed schedule — only how many shards run concurrently.
  explicit Cluster(int workers);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Registers `eng` as the next shard and returns its rank (dense from 0,
  /// registration order). The engine keeps a back-pointer for cross_post().
  int add(Engine& eng);

  /// Retires a dying shard's slot (called from ~Engine, so a Cluster and
  /// its engines may be destroyed in either order). Remaining ranks are
  /// unchanged; the dead rank is skipped by every loop. Must not be called
  /// while run()/run_sequential() is executing.
  void detach(Engine& eng) noexcept;

  /// Declares a cross-shard latency seam of `min_latency` ns (called by
  /// net::Link when its two sides live on different shards). The window
  /// lookahead is the minimum over all declared seams.
  void note_lookahead(SimDuration min_latency) noexcept {
    if (min_latency < lookahead_) lookahead_ = min_latency;
  }
  [[nodiscard]] SimDuration lookahead() const noexcept { return lookahead_; }

  /// Enqueues `fn` to run on shard `dst_rank` at absolute time `t`,
  /// ordered by (t, src_rank, send sequence) against every other
  /// cross-shard message. During run() the message is delivered at the
  /// next window boundary — `t` must be at or past the current horizon,
  /// which the lookahead guarantees for anything sent over a declared
  /// net:: seam. Outside run() (setup/drain phases) it schedules directly.
  void post(int src_rank, int dst_rank, SimTime t, EventFn fn);

  /// Runs every shard to completion in exact global event order: one event
  /// at a time, picking the shard with the earliest (t, rank). Used for
  /// the single-threaded setup/teardown phases where coroutines are
  /// allowed to hop between shards (connection establishment spans hosts).
  void run_sequential();

  /// Runs every shard to completion in conservative lookahead windows,
  /// shards in parallel on the worker pool. The executed schedule is
  /// identical for any worker count. Rethrows the first shard exception
  /// (lowest rank wins, deterministically).
  void run();

  [[nodiscard]] int workers() const noexcept { return workers_; }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  /// Static shard->worker pinning (rank % effective worker count).
  [[nodiscard]] int worker_of(int rank) const noexcept {
    return rank % effective_workers();
  }
  [[nodiscard]] Engine& shard(int rank) noexcept { return *shards_[rank]; }

  /// Barrier rounds executed by run() so far (observability/tests).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  /// Cross-shard messages posted so far (observability/tests).
  [[nodiscard]] std::uint64_t cross_posts() const noexcept;
  /// Events dispatched across all shards.
  [[nodiscard]] std::uint64_t events_processed() const;

 private:
  struct Msg {
    SimTime t;
    std::uint64_t seq;  // per-source send order
    int dst;
    EventFn fn;
  };
  /// One per shard; only that shard's pinned worker appends during a
  /// window, and only the coordinator drains between windows (the barrier
  /// provides the happens-before edge both ways).
  struct Outbox {
    std::vector<Msg> msgs;
    std::uint64_t next_seq = 0;
  };

  [[nodiscard]] int effective_workers() const noexcept {
    const int n = static_cast<int>(shards_.size());
    return workers_ < n ? (workers_ < 1 ? 1 : workers_) : (n < 1 ? 1 : n);
  }
  [[nodiscard]] SimTime min_next_event() const noexcept;
  /// Moves every buffered cross-shard message into its destination heap,
  /// sorted by (t, src_rank, seq). Single-threaded (between windows).
  void deliver_outboxes();

  int workers_;
  std::vector<Engine*> shards_;
  std::vector<std::unique_ptr<Outbox>> outboxes_;  // stable addresses
  std::vector<std::exception_ptr> errors_;
  SimDuration lookahead_ = kTimeInfinity;
  SimTime horizon_ = 0;   // current window's exclusive upper bound
  bool parallel_ = false;  // inside run(): post() buffers instead of
                           // scheduling directly
  std::uint64_t windows_ = 0;
};

}  // namespace e2e::sim
