#include "sim/engine.hpp"

#include <utility>

#include "sim/cluster.hpp"

namespace e2e::sim {

Engine::~Engine() {
  if (cluster_ != nullptr) cluster_->detach(*this);
}

// Sift operations move 24-byte POD keys only; the EventFn payloads stay put
// in slots_ until dispatch, so reordering the heap never runs a relocate
// thunk and a sift touches at most log4(n) contiguous cache lines.

std::uint32_t Engine::claim_slot(EventFn&& fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    slots_[s] = std::move(fn);
    return s;
  }
  const std::uint32_t s = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(std::move(fn));
  return s;
}

void Engine::sift_up(std::size_t i) {
  const Event e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Event e = heap_[i];
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Engine::schedule_at(SimTime t, EventFn fn) {
  if (t < now_) t = now_;
  const std::uint32_t slot = claim_slot(std::move(fn));
  heap_.push_back(Event{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

void Engine::dispatch_one() {
  // Move the callback out before popping: fn may schedule new events.
  const Event top = heap_.front();
  now_ = top.t;
  EventFn fn = std::move(slots_[top.slot]);
  free_slots_.push_back(top.slot);
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  ++events_processed_;
  fn();
}

void Engine::run() {
  stopped_ = false;
  while (!heap_.empty() && !stopped_) dispatch_one();
}

std::uint64_t Engine::run_until(SimTime t) {
  stopped_ = false;
  const std::uint64_t before_count = events_processed_;
  while (!heap_.empty() && !stopped_ && heap_.front().t <= t) dispatch_one();
  if (!stopped_ && now_ < t) now_ = t;
  return events_processed_ - before_count;
}

std::uint64_t Engine::run_window(SimTime horizon) {
  stopped_ = false;
  const std::uint64_t before_count = events_processed_;
  while (!heap_.empty() && !stopped_ && heap_.front().t < horizon)
    dispatch_one();
  return events_processed_ - before_count;
}

void Engine::cross_post(Engine& dst, SimTime t, EventFn fn) {
  if (&dst == this || cluster_ == nullptr || dst.cluster_ != cluster_) {
    dst.schedule_at(t, std::move(fn));
    return;
  }
  cluster_->post(rank_, dst.rank_, t, std::move(fn));
}

}  // namespace e2e::sim
