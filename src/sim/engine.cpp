#include "sim/engine.hpp"

#include <utility>

namespace e2e::sim {

void Engine::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::dispatch_one() {
  // Move the callback out before popping: fn may schedule new events, and
  // priority_queue::top() is const (fn is mutable for exactly this move).
  auto fn = std::move(queue_.top().fn);
  now_ = queue_.top().t;
  queue_.pop();
  ++events_processed_;
  fn();
}

void Engine::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) dispatch_one();
}

std::uint64_t Engine::run_until(SimTime t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().t <= t) {
    dispatch_one();
    ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

}  // namespace e2e::sim
