// Rate-based queueing resource.
//
// A Resource models a device that serves work at a fixed rate (bytes/s,
// cycles/s, ...). Requests are served FIFO: a request of `units` issued at
// time t completes at max(t, busy_until) + units/rate. This is the
// work-conserving single-server queue used for CPU cores, memory channels,
// NUMA interconnect directions, PCIe lanes, NIC engines, and network links.
//
// Concurrent requests therefore share the device's full rate in aggregate
// (back-to-back service), which is the behaviour that matters for the
// throughput/bottleneck analysis in this library.
#pragma once

#include <coroutine>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace e2e::sim {

class Resource {
 public:
  /// `units_per_second` must be > 0 (e.g. bytes/s for a link).
  Resource(Engine& eng, double units_per_second, std::string name = {})
      : eng_(eng), name_(std::move(name)) {
    set_rate(units_per_second);
    eng_.register_resource(this);
  }
  ~Resource() { eng_.deregister_resource(this); }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Changes the service rate.
  ///
  /// Semantics under queued work (e.g. a fault-injected rate flap while
  /// acquirers are backed up): the un-drained backlog in [now, busy_until)
  /// is re-planned at the new rate — the server now drains
  /// `backlog * old_rate / new_rate` ns from now — and busy_time() is
  /// adjusted by the same delta, so utilization accounting stays exact
  /// through flaps. Completion events for already-issued acquires keep
  /// their originally scheduled wakeup times (engine events are immutable
  /// once posted); only the queue tail moves, which requests issued after
  /// the call observe. Non-positive rates throw.
  void set_rate(double units_per_second) {
    if (units_per_second <= 0.0)
      throw std::invalid_argument("Resource rate must be positive: " + name_);
    const double new_rate = units_per_second / 1e9;
    const SimTime now = eng_.now();
    if (busy_until_ > now && new_rate != rate_per_ns_) {
      const SimDuration backlog = busy_until_ - now;
      const double scaled =
          static_cast<double>(backlog) * (rate_per_ns_ / new_rate);
      const SimDuration replanned =
          scaled < 1.0 ? 1 : static_cast<SimDuration>(scaled);
      const SimTime new_until = Engine::saturating_add(now, replanned);
      const SimDuration drain = new_until - now;
      // busy_ns_ already counts the backlog at the old rate; shift it to
      // the re-planned drain time. backlog <= busy_ns_ by construction.
      busy_ns_ += drain;
      busy_ns_ -= backlog;
      if (AuditHook* a = eng_.audit_hook())
        a->on_resource_replan(*this, busy_until_, new_until);
      busy_until_ = new_until;
    }
    rate_per_ns_ = new_rate;
  }

  [[nodiscard]] double rate_per_second() const noexcept {
    return rate_per_ns_ * 1e9;
  }

  /// Service duration for `units` at the current rate, in ns (>= 1 for
  /// non-zero work so that ordering through the engine stays strict).
  [[nodiscard]] SimDuration service_time(double units) const noexcept {
    if (units <= 0.0) return 0;
    const double ns = units / rate_per_ns_;
    return ns < 1.0 ? 1 : static_cast<SimDuration>(ns);
  }

  /// Awaitable that completes when the request has been fully served.
  /// Usage: `co_await link.acquire(bytes);`
  auto acquire(double units) {
    struct Awaiter {
      Resource& r;
      double units;
      bool await_ready() const noexcept { return units <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        const SimTime done = r.plan(units);
        r.eng_.schedule_at(done, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, units};
  }

  /// Books service without suspending; returns the completion time. Used by
  /// fire-and-forget charges (e.g. DMA traffic accounted against a memory
  /// channel while the initiating actor continues).
  SimTime charge(double units) { return plan(units); }

  /// Books `busy_delta` ns of service and `units_delta` units of work
  /// analytically — a fast-forwarded steady-state span, not a FIFO window.
  /// The busy horizon is deliberately untouched: fast-forward skips modeled
  /// time on the engine's *virtual* clock only, so queueing behaviour of
  /// requests issued after the collapse is unchanged. Fires the audit-hook
  /// sibling so conservation ledgers absorb the same deltas.
  void fast_forward(SimDuration busy_delta, double units_delta) {
    busy_ns_ += busy_delta;
    units_served_ += units_delta;
    if (AuditHook* a = eng_.audit_hook())
      a->on_resource_fast_forward(*this, busy_delta, units_delta);
  }

  /// Time at which the server drains the currently queued work.
  [[nodiscard]] SimTime busy_until() const noexcept { return busy_until_; }

  /// Queueing delay a request issued now would see before service begins.
  [[nodiscard]] SimDuration backlog_delay() const noexcept {
    return busy_until_ > eng_.now() ? busy_until_ - eng_.now() : 0;
  }

  /// Total busy time accumulated (ns) and units served since construction.
  [[nodiscard]] SimDuration busy_time() const noexcept { return busy_ns_; }
  [[nodiscard]] double units_served() const noexcept { return units_served_; }

  /// Mean utilization over [t0, t1] assuming stats captured at both ends:
  /// callers snapshot busy_time() themselves; this helper is for whole-run
  /// utilization.
  [[nodiscard]] double utilization() const noexcept {
    const SimTime t = eng_.now();
    return t == 0 ? 0.0 : static_cast<double>(busy_ns_) / static_cast<double>(t);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  SimTime plan(double units) {
    const SimTime start = busy_until_ > eng_.now() ? busy_until_ : eng_.now();
    const SimDuration svc = service_time(units);
    busy_until_ = Engine::saturating_add(start, svc);
    busy_ns_ += svc;
    units_served_ += units;
    if (TraceHook* h = eng_.trace_hook())
      h->on_resource_service(*this, start, busy_until_, units);
    if (AuditHook* a = eng_.audit_hook())
      a->on_resource_service(*this, start, busy_until_, units);
    return busy_until_;
  }

  Engine& eng_;
  std::string name_;
  double rate_per_ns_ = 1.0;
  SimTime busy_until_ = 0;
  SimDuration busy_ns_ = 0;
  double units_served_ = 0.0;
};

}  // namespace e2e::sim
