// Cross-layer invariant auditing (e2e::check).
//
// The simulation's headline numbers rest on conservation laws the code
// never checked at run time: bytes that leave a source must reach the sink
// exactly once, a Resource can never be more than 100% busy, RFTP credits
// must survive failover without leaking, DMA must only touch registered
// memory, and every nanosecond of CPU charged to a core must be accounted
// to a metrics::CpuCategory. The Auditor observes all of these live.
//
// Wiring mirrors the tracing layer: sim::Engine holds a nullable
// sim::AuditHook pointer (sibling of TraceHook), instrumented call sites do
//
//   if (auto* au = check::of(eng)) au->on_...(...);
//
// so a disabled audit costs one pointer load per site. The Auditor only
// observes — it never schedules events or mutates audited state — so an
// installed auditor cannot perturb the simulated timeline: audited runs are
// byte-identical in trace output to unaudited runs (violations aside).
//
// Violations are collected with simulated-time context (and surfaced as
// trace instants on the "check/violations" track when a tracer is
// installed). Policy::kAbortOnFinalize turns any violation into an
// AuditFailure thrown from finalize(); the default collects so tests can
// assert on ok()/violations().
//
// Audits are on in Debug builds of the CLI tools and in the chaos test
// suite; Release runs opt in via --audit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "metrics/cpu_usage.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace e2e::check {

/// One invariant breach: a stable rule id (e.g. "rftp.credit-leak"), a
/// human-readable detail line, and the simulated time it was detected.
struct Violation {
  std::string rule;
  std::string detail;
  sim::SimTime when = 0;
};

class AuditFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Policy {
  kCollect,          // record violations; inspect via ok()/violations()
  kAbortOnFinalize,  // finalize() throws AuditFailure when violations exist
};

class Auditor final : public sim::AuditHook {
 public:
  /// Installs itself as the engine's audit hook and snapshots the counters
  /// of every already-registered Resource (so mid-run installation audits
  /// only what it observed). Throws if another hook is installed.
  explicit Auditor(sim::Engine& eng, Policy policy = Policy::kCollect);
  ~Auditor() override;
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  // --- sim::AuditHook (called by sim::Resource) ---
  void on_resource_service(const sim::Resource& r, sim::SimTime start,
                           sim::SimTime end, double units) override;
  void on_resource_replan(const sim::Resource& r, sim::SimTime old_busy_until,
                          sim::SimTime new_busy_until) override;
  void on_resource_destroyed(const sim::Resource& r) override;
  /// Analytic service booked by Resource::fast_forward: fold the deltas
  /// into the running sums so the exact busy-time reconciliation holds on
  /// fast-forwarded runs.
  void on_resource_fast_forward(const sim::Resource& r,
                                sim::SimDuration busy_delta,
                                double units_delta) override;
  /// Modeled time skipped without events: widens the utilization ceilings
  /// (busy time accrued analytically has no event-clock span to sit in).
  void on_time_skip(sim::SimDuration d) override { skipped_ += d; }

  // --- CPU accounting (called by numa::Thread) ---

  /// `ns` of category `cat` accounted against the core whose cycle
  /// Resource is `core_cycles`. The charge has already landed on the
  /// resource when this is called.
  void on_cpu_charge(const sim::Resource* core_cycles,
                     metrics::CpuCategory cat, sim::SimDuration ns);

  // --- QP byte ledger (called by rdma::QueuePair) ---
  //
  // Keyed by the *receiving* QP of each transfer so the sender's successful
  // completions and the receiver's deliveries/drops reconcile per flow
  // direction. RDMA READ is excluded (its bytes complete at the requester
  // and never cross the receiver loop).

  /// A WR's payload left the sender successfully (a successful CQE was
  /// pushed and delivery to `rx_qp` was scheduled).
  void on_qp_tx(const void* rx_qp, std::string_view who, std::uint64_t bytes);
  /// A delivery landed at `rx_qp` (DMA booked, CQE/deposit done).
  void on_qp_rx(const void* rx_qp, std::string_view who, std::uint64_t bytes);
  /// `rx_qp` dropped an inbound delivery because it is in the error state.
  void on_qp_drop(const void* rx_qp, std::string_view who,
                  std::uint64_t bytes);
  /// A WR was posted to a QP already in the error state (legal — it
  /// flushes immediately with a failed completion; counted so the ledger
  /// can prove none of them transmitted).
  void on_qp_post_dead(const void* qp, std::string_view who);
  /// MR legality at a DMA touch point: `registered` must be true.
  void on_dma_check(const void* qp, std::string_view who, bool registered,
                    std::string_view what);

  // --- generic byte-flow ledger (tcp/iscsi/iser) ---
  //
  // A flow is identified by (id, name); `out` must never exceed `in`
  // (drops are legal, duplication/creation of bytes is not).
  void flow_in(const void* id, std::string_view name, std::uint64_t bytes);
  void flow_out(const void* id, std::string_view name, std::uint64_t bytes);

  // --- RFTP credit + block conservation (called by rftp::RftpSession) ---

  void rftp_begin(const void* sess, std::uint64_t total_bytes,
                  std::uint64_t block_bytes, std::uint64_t block_count,
                  int streams);
  /// A filler staged `bytes` of block `block_idx` from the source.
  void rftp_fill(const void* sess, std::uint64_t block_idx,
                 std::uint64_t bytes);
  /// The receiver sent (or re-sent) the grant for `token` on `stream`.
  void rftp_grant_sent(const void* sess, int stream, std::uint32_t token);
  /// The grant send for `token` failed on the wire (credit would leak
  /// without the reaper's re-send).
  void rftp_grant_lost(const void* sess, int stream, std::uint32_t token);
  /// The sender received the grant and queued the credit.
  void rftp_credit_received(const void* sess, int stream, std::uint32_t token);
  /// The sender consumed the credit: a block is now bound for `token`.
  void rftp_credit_consumed(const void* sess, int stream, std::uint32_t token);
  /// A block landed and was processed by a drainer. `landed_tag` is the
  /// integrity tag lifted from the landing buffer; `checksum_ok` is the
  /// session's own header-vs-landed verdict.
  void rftp_drain(const void* sess, int stream, std::uint32_t token,
                  std::uint64_t block_idx, std::uint64_t bytes,
                  std::uint64_t landed_tag, bool duplicate, bool checksum_ok);
  void rftp_stream_dead(const void* sess, int stream);
  // Crash-epoch hooks: the auditor carries block/credit conservation
  // across crash-stop fault domains (host crash + scripted restart).
  /// The receiver checkpointed its acked-block ledger. `ledger` is the
  /// durable bitmap (1 = acked and persisted); a ledger claiming a block
  /// the audit never saw drain is a violation.
  void rftp_checkpoint(const void* sess, const std::vector<char>& ledger);
  /// Host `host` (0 = sender, 1 = receiver) crash-stopped: every stream
  /// dies at once; volatile receiver state may roll back next.
  void rftp_crash(const void* sess, int host);
  /// A drained-but-unledgered block was un-drained by a receiver crash.
  /// Rolling back a ledgered (durably acked) block — which would let its
  /// bytes count as goodput twice — is a violation.
  void rftp_rollback(const void* sess, std::uint64_t block_idx,
                     std::uint64_t bytes, std::uint64_t tag);
  /// Stream `stream` came back with the restarted host. Re-login returns
  /// every credit token to the receiver (states reset before the
  /// session's full re-grant).
  void rftp_stream_revived(const void* sess, int stream);
  /// The restart completed: the session resumed the transfer.
  void rftp_resume(const void* sess);
  /// One block advanced fill-to-drain in closed form by the fast-forward
  /// replay (rftp::FastForward). Equivalent to a fill + fresh drain of the
  /// analytic tag: the block ledger, delivered-byte total, XOR digest and
  /// fresh-drain count advance exactly as an event-exact pass would leave
  /// them. Credit/token counters are deliberately untouched — no grant or
  /// credit message is modeled inside a collapsed span (the in-rotation
  /// tokens keep cycling through the event-exact tail), and all credit
  /// invariants are inequalities that stay valid.
  void rftp_fast_forward_drain(const void* sess, std::uint64_t block_idx,
                               std::uint64_t bytes);
  /// Bulk variant for one collapsed period's blocks: identical checks and
  /// ledger updates as per-block calls, but the session lookup happens once
  /// — the per-block hash probe would otherwise dominate the collapse loop.
  void rftp_fast_forward_drains(const void* sess, const std::uint64_t* idx,
                                std::size_t n, std::uint64_t bytes);
  /// The transfer finished. `delivered_bytes`/`sink_digest` are the
  /// session's own tallies; the auditor reconciles them against its
  /// independently accumulated ledger and the analytic digest.
  void rftp_end(const void* sess, bool complete, std::uint64_t delivered_bytes,
                std::uint64_t sink_digest);

  // --- fast-forward CPU accounting ---
  // The per-core accounted[category] arrays are integer nanoseconds, so a
  // steady-state period's delta replays exactly. Arrays are flattened in
  // first-seen core order, kCpuCategoryCount entries per core.

  /// Cycle-server pointers of every audited core, in first-seen order.
  void ff_cpu_cores(std::vector<const sim::Resource*>& out) const;
  /// Flattened copy of every core's accounted-by-category array.
  void ff_cpu_snapshot(std::vector<sim::SimDuration>& out) const;
  /// Adds `delta * k` element-wise to the accounted arrays. Returns false
  /// (and applies nothing) if the core population changed since the
  /// snapshot shape was captured.
  bool ff_cpu_apply(const std::vector<sim::SimDuration>& delta,
                    std::uint64_t k);

  // --- end-of-run reconciliation ---

  /// Runs every deferred cross-check (resource totals, CPU totals, QP
  /// ledgers, flow ledgers, RFTP credit states). Call after the engine has
  /// drained. Under Policy::kAbortOnFinalize throws AuditFailure when any
  /// violation (deferred or live) was recorded. Idempotent per audit state:
  /// calling twice re-checks against current counters.
  void finalize();

  /// Folds split QP byte ledgers across per-shard auditors before their
  /// finalize() calls. A cross-shard RDMA flow records its tx bytes in the
  /// sender shard's auditor and its rx/dropped bytes in the receiver
  /// shard's — each half alone would (falsely) fail conservation. For every
  /// QP key known to more than one auditor, the counters are folded into
  /// the first auditor (in `shards` order) that saw the key and zeroed in
  /// the rest, so exactly one finalize() checks the whole flow. Shard order
  /// must be the deterministic rank order so violations land identically
  /// on every run.
  static void merge_qp_ledgers(const std::vector<Auditor*>& shards);

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  /// Human-readable summary: violation lines or an "all quiet" note with
  /// the audited-entity counts.
  void report(std::ostream& os) const;

  /// Violations print to stderr as they occur by default; canary tests that
  /// plant deliberate breaches turn this off.
  void set_log(bool on) noexcept { log_ = on; }

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }

 private:
  struct ResourceState {
    const sim::Resource* res = nullptr;  // null once destroyed
    std::string name;
    sim::SimTime last_end = 0;
    double sum_units = 0.0;
    sim::SimDuration sum_busy = 0;
    // Counter snapshots at install (mid-run installs audit the delta).
    double base_units = 0.0;
    sim::SimDuration base_busy = 0;
    bool live = true;
    // Final counter values, captured at destruction for dead resources.
    double end_units = 0.0;
    sim::SimDuration end_busy = 0;
    sim::SimTime end_busy_until = 0;
  };

  struct CoreState {
    std::size_t res_idx = 0;  // index into resources_ for the cycle server
    sim::SimDuration accounted[metrics::kCpuCategoryCount] = {};
    [[nodiscard]] sim::SimDuration total() const noexcept {
      sim::SimDuration s = 0;
      for (auto v : accounted) s += v;
      return s;
    }
  };

  struct QpLedger {
    std::string who;
    std::uint64_t tx = 0;
    std::uint64_t rx = 0;
    std::uint64_t dropped = 0;
    std::uint64_t posts_on_dead = 0;
  };

  struct Flow {
    std::string name;
    std::uint64_t in = 0;
    std::uint64_t out = 0;
    bool over_reported = false;  // one violation per flow, not per byte
  };

  enum class TokenState : std::uint8_t {
    kReceiver,       // token buffer idle at the receiver
    kGrantInFlight,  // grant sent, sender has not acknowledged holding it
    kSenderHeld,     // credit queued/held at the sender
    kOnWire,         // consumed: a data block is bound for the token
  };

  struct StreamAudit {
    bool dead = false;
    std::vector<TokenState> tokens;
    std::uint64_t granted = 0;
    std::uint64_t received = 0;
    std::uint64_t consumed = 0;
    std::uint64_t grant_losses = 0;
  };

  struct BlockAudit {
    std::uint32_t fills = 0;
    std::uint64_t fill_bytes = 0;  // size of the latest fill
    bool drained = false;
  };

  struct RftpAudit {
    std::string tag;  // context label for violation messages
    std::uint64_t total_bytes = 0;
    std::uint64_t block_bytes = 0;
    std::uint64_t block_count = 0;
    std::vector<StreamAudit> streams;
    std::vector<BlockAudit> blocks;
    std::uint64_t delivered = 0;
    std::uint64_t digest = 0;
    std::uint64_t fresh_drains = 0;
    std::uint64_t dup_drains = 0;
    std::uint64_t checksum_rejects = 0;
    // Crash-epoch state: the durable acked bitmap as of the last
    // checkpoint, plus crash/resume/rollback tallies. fresh_drains must
    // equal block_count + rollbacks on a complete transfer — each rolled
    // back block drains exactly once more, never double-counting goodput.
    std::vector<char> ledgered;
    std::uint64_t crashes = 0;
    std::uint64_t resumes = 0;
    std::uint64_t rollbacks = 0;
    bool ended = false;
    bool complete = false;
  };

  void violate(std::string_view rule, std::string detail);
  ResourceState& resource_state(const sim::Resource& r);
  void reconcile_resource(const ResourceState& s);
  QpLedger& qp_ledger(const void* rx_qp, std::string_view who);
  Flow& flow(const void* id, std::string_view name);
  StreamAudit* rftp_stream(const void* sess, int stream, const char* site);
  RftpAudit* rftp_find(const void* sess, const char* site);

  sim::Engine& eng_;
  Policy policy_;
  bool log_ = true;
  sim::SimDuration skipped_ = 0;  // modeled time absorbed by Engine::skip_time
  std::vector<Violation> violations_;

  // Insertion-ordered state with pointer lookup maps: reports and finalize
  // sweeps iterate in first-seen order (deterministic across runs), and a
  // reused heap address after a destruction starts a fresh entry.
  std::vector<ResourceState> resources_;
  std::unordered_map<const sim::Resource*, std::size_t> resource_index_;
  std::vector<std::pair<const sim::Resource*, CoreState>> cores_;
  std::unordered_map<const sim::Resource*, std::size_t> core_index_;
  std::vector<std::pair<const void*, QpLedger>> qps_;
  std::unordered_map<const void*, std::size_t> qp_index_;
  std::vector<Flow> flows_;
  std::unordered_map<std::string, std::size_t> flow_index_;
  std::vector<RftpAudit> rftp_;
  std::unordered_map<const void*, std::size_t> rftp_index_;
};

/// The installed auditor, or null when auditing is disabled. The only
/// AuditHook implementation in the tree is the Auditor, so the downcast is
/// exact (same contract as trace::of).
[[nodiscard]] inline Auditor* of(sim::Engine& eng) noexcept {
  return static_cast<Auditor*>(eng.audit_hook());
}

}  // namespace e2e::check
