#include "check/audit.hpp"


#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

#include "fault/integrity.hpp"
#include "sim/resource.hpp"
#include "stats/registry.hpp"
#include "trace/tracer.hpp"

namespace e2e::check {

namespace {

std::string ptr_tag(std::string_view prefix, const void* p) {
  std::ostringstream os;
  os << prefix << '@' << p;
  return os.str();
}

const char* token_state_name(int s) {
  switch (s) {
    case 0: return "receiver";
    case 1: return "grant-in-flight";
    case 2: return "sender-held";
    case 3: return "on-wire";
  }
  return "?";
}

/// Accumulated doubles diverge from the audited running sum by rounding
/// (the resource's accumulator may be large when the auditor installs), so
/// unit totals compare with a relative tolerance; time totals are integers
/// and compare exactly.
bool units_close(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-6 * scale;
}

}  // namespace

Auditor::Auditor(sim::Engine& eng, Policy policy)
    : eng_(eng), policy_(policy) {
  if (eng_.audit_hook() != nullptr)
    throw std::logic_error("an audit hook is already installed");
  // Baseline every live resource so a mid-run install audits only the
  // service it actually observes.
  for (sim::Resource* r : eng_.resources()) {
    ResourceState& s = resource_state(*r);
    s.base_busy = r->busy_time();
    s.base_units = r->units_served();
    s.last_end = 0;  // windows before install are unobserved, not overlaps
  }
  eng_.set_audit_hook(this);
}

Auditor::~Auditor() {
  if (eng_.audit_hook() == this) eng_.set_audit_hook(nullptr);
}

void Auditor::violate(std::string_view rule, std::string detail) {
  Violation v{std::string(rule), std::move(detail), eng_.now()};
  if (log_)
    std::fprintf(stderr, "[audit] t=%llu ns  %s: %s\n",
                 static_cast<unsigned long long>(v.when), v.rule.c_str(),
                 v.detail.c_str());
  // Violations surface in the trace too (lazily: zero-violation runs emit
  // nothing, keeping audited traces byte-identical to unaudited ones).
  if (auto* tr = trace::of(eng_)) {
    tr->instant(tr->track(trace::Layer::kApp, "check/violations"), v.rule);
    tr->counter("check/violations").add(1);
  }
  // An invariant break is exactly what the flight recorder exists for:
  // dump the window of records leading up to it (first violation only —
  // trigger_flight_dump latches).
  if (auto* st = stats::of(eng_))
    st->trigger_flight_dump("audit:" + v.rule);
  violations_.push_back(std::move(v));
}

// --- resources ---

Auditor::ResourceState& Auditor::resource_state(const sim::Resource& r) {
  auto it = resource_index_.find(&r);
  if (it != resource_index_.end()) return resources_[it->second];
  resource_index_.emplace(&r, resources_.size());
  ResourceState s;
  s.res = &r;
  s.name = r.name().empty() ? ptr_tag("resource", &r) : r.name();
  resources_.push_back(std::move(s));
  return resources_.back();
}

void Auditor::on_resource_service(const sim::Resource& r, sim::SimTime start,
                                  sim::SimTime end, double units) {
  ResourceState& s = resource_state(r);
  if (start < s.last_end)
    violate("resource.window-overlap",
            s.name + ": service window starts at " + std::to_string(start) +
                " inside the previous window ending at " +
                std::to_string(s.last_end));
  if (end < start)
    violate("resource.window-inverted",
            s.name + ": window ends before it starts");
  if (units < 0.0)
    violate("resource.negative-units",
            s.name + ": served " + std::to_string(units) + " units");
  s.last_end = std::max(s.last_end, end);
  s.sum_busy += end - start;
  s.sum_units += units;
}

void Auditor::on_resource_replan(const sim::Resource& r,
                                 sim::SimTime old_busy_until,
                                 sim::SimTime new_busy_until) {
  ResourceState& s = resource_state(r);
  // Mirror set_rate()'s busy_ns_ adjustment exactly (same +=/-= sequence,
  // so the equality check tracks even through unsigned wrap when the
  // auditor installed mid-backlog).
  const sim::SimTime now = eng_.now();
  s.sum_busy += new_busy_until - now;
  s.sum_busy -= old_busy_until - now;
  s.last_end = new_busy_until;
}

void Auditor::reconcile_resource(const ResourceState& s) {
  const sim::SimDuration busy =
      s.live ? s.res->busy_time() : s.end_busy;
  const double units = s.live ? s.res->units_served() : s.end_units;
  const sim::SimTime busy_until =
      s.live ? s.res->busy_until() : s.end_busy_until;
  if (s.sum_busy != busy - s.base_busy)
    violate("resource.busy-accounting",
            s.name + ": observed " + std::to_string(s.sum_busy) +
                " ns of service but busy_time() advanced by " +
                std::to_string(busy - s.base_busy) + " ns");
  if (!units_close(s.sum_units, units - s.base_units))
    violate("resource.units-accounting",
            s.name + ": observed " + std::to_string(s.sum_units) +
                " units served but units_served() advanced by " +
                std::to_string(units - s.base_units));
  // Utilization can never exceed 1: all busy time fits in [0, busy_until],
  // and once the queue has drained it fits in elapsed time. Analytically
  // fast-forwarded service has no event-clock window — it models work done
  // inside skipped virtual time — so both ceilings widen by the skip.
  if (busy_until != sim::kTimeInfinity &&
      busy > sim::Engine::saturating_add(busy_until, skipped_))
    violate("resource.utilization",
            s.name + ": busy_time " + std::to_string(busy) +
                " ns exceeds drain time " + std::to_string(busy_until) +
                " + skipped " + std::to_string(skipped_));
  const sim::SimTime elapsed = eng_.virtual_now();
  if (s.live && eng_.now() >= busy_until && busy > elapsed)
    violate("resource.utilization",
            s.name + ": busy_time " + std::to_string(busy) +
                " ns exceeds elapsed time " + std::to_string(elapsed));
}

void Auditor::on_resource_fast_forward(const sim::Resource& r,
                                       sim::SimDuration busy_delta,
                                       double units_delta) {
  ResourceState& s = resource_state(r);
  // No service window: last_end is untouched (overlap checks only apply to
  // event-exact FIFO windows), only the conservation sums advance.
  s.sum_busy += busy_delta;
  s.sum_units += units_delta;
}

void Auditor::on_resource_destroyed(const sim::Resource& r) {
  auto it = resource_index_.find(&r);
  if (it == resource_index_.end()) return;
  ResourceState& s = resources_[it->second];
  s.end_busy = r.busy_time();
  s.end_units = r.units_served();
  s.end_busy_until = r.busy_until();
  s.live = false;
  s.res = nullptr;
  reconcile_resource(s);
  // Forget the address: if the allocator reuses it, that is a new resource.
  resource_index_.erase(it);
  core_index_.erase(&r);
}

// --- CPU ---

void Auditor::on_cpu_charge(const sim::Resource* core_cycles,
                            metrics::CpuCategory cat, sim::SimDuration ns) {
  auto it = core_index_.find(core_cycles);
  std::size_t idx;
  if (it == core_index_.end()) {
    resource_state(*core_cycles);  // ensure the cycle server is tracked
    idx = cores_.size();
    core_index_.emplace(core_cycles, idx);
    CoreState cs;
    cs.res_idx = resource_index_.at(core_cycles);
    cores_.emplace_back(core_cycles, cs);
  } else {
    idx = it->second;
  }
  cores_[idx].second.accounted[static_cast<std::size_t>(cat)] += ns;
}

// --- QP ledger ---

namespace {
std::string qp_label(const void* qp, std::string_view who) {
  std::string s(who);
  s += '/';
  std::ostringstream os;
  os << qp;
  s += os.str();
  return s;
}
}  // namespace

Auditor::QpLedger& Auditor::qp_ledger(const void* rx_qp,
                                      std::string_view who) {
  auto it = qp_index_.find(rx_qp);
  if (it != qp_index_.end()) return qps_[it->second].second;
  qp_index_.emplace(rx_qp, qps_.size());
  qps_.emplace_back(rx_qp, QpLedger{qp_label(rx_qp, who), 0, 0, 0, 0});
  return qps_.back().second;
}

void Auditor::on_qp_tx(const void* rx_qp, std::string_view who,
                       std::uint64_t bytes) {
  qp_ledger(rx_qp, who).tx += bytes;
}

void Auditor::on_qp_rx(const void* rx_qp, std::string_view who,
                       std::uint64_t bytes) {
  qp_ledger(rx_qp, who).rx += bytes;
}

void Auditor::on_qp_drop(const void* rx_qp, std::string_view who,
                         std::uint64_t bytes) {
  qp_ledger(rx_qp, who).dropped += bytes;
}

void Auditor::on_qp_post_dead(const void* qp, std::string_view who) {
  qp_ledger(qp, who).posts_on_dead += 1;
}

void Auditor::merge_qp_ledgers(const std::vector<Auditor*>& shards) {
  // First auditor (in shard-rank order) to know a QP key owns the merged
  // ledger; later shards' halves fold in and zero out, so conservation is
  // checked once per flow, against whole-flow totals.
  std::unordered_map<const void*, QpLedger*> owner;
  for (Auditor* a : shards) {
    for (auto& [qp, l] : a->qps_) {
      auto [it, fresh] = owner.emplace(qp, &l);
      if (fresh) continue;
      QpLedger& dst = *it->second;
      dst.tx += l.tx;
      dst.rx += l.rx;
      dst.dropped += l.dropped;
      dst.posts_on_dead += l.posts_on_dead;
      l = QpLedger{l.who, 0, 0, 0, 0};
    }
  }
}

void Auditor::on_dma_check(const void* qp, std::string_view who,
                           bool registered, std::string_view what) {
  if (registered) return;
  violate("rdma.unregistered-mr",
          qp_label(qp, who) + ": DMA through a deregistered MR (" +
              std::string(what) + ")");
}

// --- flows ---

void Auditor::flow_in(const void* id, std::string_view name,
                      std::uint64_t bytes) {
  flow(id, name).in += bytes;
}

void Auditor::flow_out(const void* id, std::string_view name,
                       std::uint64_t bytes) {
  Flow& f = flow(id, name);
  f.out += bytes;
  if (f.out > f.in && !f.over_reported) {
    f.over_reported = true;
    violate("flow.over-delivery",
            f.name + ": delivered " + std::to_string(f.out) +
                " bytes but only " + std::to_string(f.in) +
                " entered the flow");
  }
}

Auditor::Flow& Auditor::flow(const void* id, std::string_view name) {
  std::string key = ptr_tag(name, id);
  auto it = flow_index_.find(key);
  if (it != flow_index_.end()) return flows_[it->second];
  flow_index_.emplace(std::move(key), flows_.size());
  Flow f;
  f.name = ptr_tag(name, id);
  flows_.push_back(std::move(f));
  return flows_.back();
}

// --- RFTP ---

Auditor::RftpAudit* Auditor::rftp_find(const void* sess, const char* site) {
  auto it = rftp_index_.find(sess);
  if (it != rftp_index_.end()) return &rftp_[it->second];
  violate("rftp.unknown-session",
          ptr_tag("session", sess) + ": " + site + " before rftp_begin");
  return nullptr;
}

Auditor::StreamAudit* Auditor::rftp_stream(const void* sess, int stream,
                                           const char* site) {
  RftpAudit* a = rftp_find(sess, site);
  if (a == nullptr) return nullptr;
  if (stream < 0 || static_cast<std::size_t>(stream) >= a->streams.size()) {
    violate("rftp.unknown-stream", a->tag + ": " + site + " on stream " +
                                       std::to_string(stream));
    return nullptr;
  }
  return &a->streams[static_cast<std::size_t>(stream)];
}

void Auditor::rftp_begin(const void* sess, std::uint64_t total_bytes,
                         std::uint64_t block_bytes, std::uint64_t block_count,
                         int streams) {
  auto it = rftp_index_.find(sess);
  if (it != rftp_index_.end()) {
    // A session object re-running a transfer starts a fresh audit epoch.
    rftp_[it->second] = RftpAudit{};
    rftp_index_.erase(it);
  }
  rftp_index_.emplace(sess, rftp_.size());
  RftpAudit a;
  a.tag = ptr_tag("rftp", sess);
  a.total_bytes = total_bytes;
  a.block_bytes = block_bytes;
  a.block_count = block_count;
  a.streams.resize(static_cast<std::size_t>(streams));
  a.blocks.resize(block_count);
  rftp_.push_back(std::move(a));
}

void Auditor::rftp_fill(const void* sess, std::uint64_t block_idx,
                        std::uint64_t bytes) {
  RftpAudit* a = rftp_find(sess, "fill");
  if (a == nullptr) return;
  if (block_idx >= a->block_count) {
    violate("rftp.block-out-of-range",
            a->tag + ": filled block " + std::to_string(block_idx) + " of " +
                std::to_string(a->block_count));
    return;
  }
  BlockAudit& b = a->blocks[block_idx];
  ++b.fills;
  b.fill_bytes = bytes;
}

void Auditor::rftp_grant_sent(const void* sess, int stream,
                              std::uint32_t token) {
  StreamAudit* s = rftp_stream(sess, stream, "grant");
  if (s == nullptr) return;
  if (s->tokens.size() <= token) s->tokens.resize(token + 1);
  ++s->granted;
  if (s->dead) return;
  TokenState& t = s->tokens[token];
  if (t != TokenState::kReceiver && t != TokenState::kGrantInFlight) {
    violate("rftp.credit-double-grant",
            rftp_find(sess, "grant")->tag + ": stream " +
                std::to_string(stream) + " granted token " +
                std::to_string(token) + " while it is " +
                token_state_name(static_cast<int>(t)));
    return;
  }
  t = TokenState::kGrantInFlight;
}

void Auditor::rftp_grant_lost(const void* sess, int stream,
                              std::uint32_t token) {
  StreamAudit* s = rftp_stream(sess, stream, "grant-lost");
  if (s == nullptr) return;
  if (s->tokens.size() <= token) s->tokens.resize(token + 1);
  ++s->grant_losses;
  if (s->dead) return;
  if (s->tokens[token] != TokenState::kGrantInFlight)
    violate("rftp.grant-lost-state",
            rftp_find(sess, "grant-lost")->tag + ": stream " +
                std::to_string(stream) + " lost a grant for token " +
                std::to_string(token) + " that is " +
                token_state_name(static_cast<int>(s->tokens[token])));
}

void Auditor::rftp_credit_received(const void* sess, int stream,
                                   std::uint32_t token) {
  StreamAudit* s = rftp_stream(sess, stream, "credit-received");
  if (s == nullptr) return;
  if (s->tokens.size() <= token) s->tokens.resize(token + 1);
  ++s->received;
  if (s->dead) return;
  TokenState& t = s->tokens[token];
  if (t != TokenState::kGrantInFlight) {
    violate("rftp.credit-duplicated",
            rftp_find(sess, "credit-received")->tag + ": stream " +
                std::to_string(stream) + " received a credit for token " +
                std::to_string(token) + " that is " +
                token_state_name(static_cast<int>(t)));
    return;
  }
  t = TokenState::kSenderHeld;
}

void Auditor::rftp_credit_consumed(const void* sess, int stream,
                                   std::uint32_t token) {
  StreamAudit* s = rftp_stream(sess, stream, "credit-consumed");
  if (s == nullptr) return;
  if (s->tokens.size() <= token) s->tokens.resize(token + 1);
  ++s->consumed;
  if (s->dead) return;
  TokenState& t = s->tokens[token];
  if (t != TokenState::kSenderHeld) {
    violate("rftp.credit-not-held",
            rftp_find(sess, "credit-consumed")->tag + ": stream " +
                std::to_string(stream) + " consumed token " +
                std::to_string(token) + " while it is " +
                token_state_name(static_cast<int>(t)));
    return;
  }
  t = TokenState::kOnWire;
}

void Auditor::rftp_drain(const void* sess, int stream, std::uint32_t token,
                         std::uint64_t block_idx, std::uint64_t bytes,
                         std::uint64_t landed_tag, bool duplicate,
                         bool checksum_ok) {
  RftpAudit* a = rftp_find(sess, "drain");
  if (a == nullptr) return;
  StreamAudit* s = rftp_stream(sess, stream, "drain");
  if (s != nullptr) {
    if (s->tokens.size() <= token) s->tokens.resize(token + 1);
    if (!s->dead) {
      TokenState& t = s->tokens[token];
      if (t != TokenState::kOnWire)
        violate("rftp.phantom-block",
                a->tag + ": stream " + std::to_string(stream) +
                    " drained a block on token " + std::to_string(token) +
                    " that is " + token_state_name(static_cast<int>(t)) +
                    ", not on-wire");
      // Any drain (fresh, duplicate, or rejected) returns the token to the
      // receiver; the following re-grant starts the next cycle.
      t = TokenState::kReceiver;
    }
  }
  if (block_idx >= a->block_count) {
    violate("rftp.block-out-of-range",
            a->tag + ": drained block " + std::to_string(block_idx) + " of " +
                std::to_string(a->block_count));
    return;
  }
  BlockAudit& b = a->blocks[block_idx];
  if (duplicate) {
    ++a->dup_drains;
    if (!b.drained)
      violate("rftp.false-duplicate",
              a->tag + ": block " + std::to_string(block_idx) +
                  " flagged duplicate but was never drained");
    return;
  }
  if (!checksum_ok) {
    ++a->checksum_rejects;
    return;
  }
  ++a->fresh_drains;
  if (b.drained) {
    violate("rftp.double-drain",
            a->tag + ": block " + std::to_string(block_idx) +
                " drained twice as fresh");
    return;
  }
  if (b.fills == 0)
    violate("rftp.drain-without-fill",
            a->tag + ": block " + std::to_string(block_idx) +
                " reached the sink without a source fill");
  else if (b.fill_bytes != bytes)
    violate("rftp.byte-conservation",
            a->tag + ": block " + std::to_string(block_idx) + " filled " +
                std::to_string(b.fill_bytes) + " bytes but drained " +
                std::to_string(bytes));
  // Independent integrity check: the landed tag must be the analytic tag
  // of this block, regardless of what the header claimed.
  if (landed_tag != fault::rftp_block_tag(block_idx, bytes))
    violate("rftp.integrity-tag",
            a->tag + ": block " + std::to_string(block_idx) +
                " landed with tag " + std::to_string(landed_tag) +
                ", expected " +
                std::to_string(fault::rftp_block_tag(block_idx, bytes)));
  b.drained = true;
  a->delivered += bytes;
  a->digest ^= landed_tag;
}

void Auditor::rftp_stream_dead(const void* sess, int stream) {
  StreamAudit* s = rftp_stream(sess, stream, "stream-dead");
  if (s != nullptr) s->dead = true;
}

void Auditor::rftp_checkpoint(const void* sess,
                              const std::vector<char>& ledger) {
  RftpAudit* a = rftp_find(sess, "checkpoint");
  if (a == nullptr) return;
  if (ledger.size() != a->block_count) {
    violate("rftp.ledger-size",
            a->tag + ": checkpoint covers " + std::to_string(ledger.size()) +
                " blocks of " + std::to_string(a->block_count));
    return;
  }
  // Durability may only be claimed for blocks the audit saw drain.
  for (std::uint64_t i = 0; i < a->block_count; ++i)
    if (ledger[i] != 0 && !a->blocks[i].drained)
      violate("rftp.ledger-unacked",
              a->tag + ": checkpoint persists block " + std::to_string(i) +
                  " that never drained");
  a->ledgered = ledger;
}

void Auditor::rftp_crash(const void* sess, int host) {
  RftpAudit* a = rftp_find(sess, "crash");
  if (a == nullptr) return;
  ++a->crashes;
  if (a->crashes > a->resumes + 1)
    violate("rftp.nested-crash",
            a->tag + ": host " + std::to_string(host) +
                " crashed while a prior crash had not resumed");
  for (StreamAudit& s : a->streams) s.dead = true;
}

void Auditor::rftp_rollback(const void* sess, std::uint64_t block_idx,
                            std::uint64_t bytes, std::uint64_t tag) {
  RftpAudit* a = rftp_find(sess, "rollback");
  if (a == nullptr) return;
  if (block_idx >= a->block_count) {
    violate("rftp.block-out-of-range",
            a->tag + ": rolled back block " + std::to_string(block_idx) +
                " of " + std::to_string(a->block_count));
    return;
  }
  BlockAudit& b = a->blocks[block_idx];
  if (!b.drained) {
    violate("rftp.rollback-not-drained",
            a->tag + ": block " + std::to_string(block_idx) +
                " rolled back but was never drained");
    return;
  }
  if (block_idx < a->ledgered.size() && a->ledgered[block_idx] != 0) {
    // A durably acked block may never be re-sent: rolling it back would
    // double-count its bytes as goodput when it drains again.
    violate("rftp.rollback-ledgered",
            a->tag + ": block " + std::to_string(block_idx) +
                " rolled back despite a durable ledger entry");
    return;
  }
  b.drained = false;
  a->delivered -= bytes;
  a->digest ^= tag;
  ++a->rollbacks;
}

void Auditor::rftp_stream_revived(const void* sess, int stream) {
  StreamAudit* s = rftp_stream(sess, stream, "stream-revived");
  if (s == nullptr) return;
  s->dead = false;
  // Re-login hands every token back to the receiver; the session's full
  // re-grant follows and walks them through the normal cycle again.
  for (TokenState& t : s->tokens) t = TokenState::kReceiver;
}

void Auditor::rftp_resume(const void* sess) {
  RftpAudit* a = rftp_find(sess, "resume");
  if (a == nullptr) return;
  ++a->resumes;
  if (a->resumes > a->crashes)
    violate("rftp.resume-without-crash",
            a->tag + ": resume #" + std::to_string(a->resumes) +
                " with only " + std::to_string(a->crashes) + " crash(es)");
}

void Auditor::rftp_fast_forward_drain(const void* sess,
                                      std::uint64_t block_idx,
                                      std::uint64_t bytes) {
  RftpAudit* a = rftp_find(sess, "fast-forward-drain");
  if (a == nullptr) return;
  if (block_idx >= a->block_count) {
    violate("rftp.block-out-of-range",
            a->tag + ": fast-forwarded block " + std::to_string(block_idx) +
                " of " + std::to_string(a->block_count));
    return;
  }
  BlockAudit& b = a->blocks[block_idx];
  if (b.drained) {
    violate("rftp.double-drain",
            a->tag + ": block " + std::to_string(block_idx) +
                " fast-forwarded but already drained");
    return;
  }
  // Collapsed fill + fresh drain of the analytic tag in one step.
  if (b.fills == 0) b.fills = 1;
  b.fill_bytes = bytes;
  b.drained = true;
  ++a->fresh_drains;
  a->delivered += bytes;
  a->digest ^= fault::rftp_block_tag(block_idx, bytes);
}

void Auditor::rftp_fast_forward_drains(const void* sess,
                                       const std::uint64_t* idx,
                                       std::size_t n, std::uint64_t bytes) {
  RftpAudit* a = rftp_find(sess, "fast-forward-drain");
  if (a == nullptr) return;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t block_idx = idx[i];
    if (block_idx >= a->block_count) {
      violate("rftp.block-out-of-range",
              a->tag + ": fast-forwarded block " + std::to_string(block_idx) +
                  " of " + std::to_string(a->block_count));
      continue;
    }
    BlockAudit& b = a->blocks[block_idx];
    if (b.drained) {
      violate("rftp.double-drain",
              a->tag + ": block " + std::to_string(block_idx) +
                  " fast-forwarded but already drained");
      continue;
    }
    if (b.fills == 0) b.fills = 1;
    b.fill_bytes = bytes;
    b.drained = true;
    ++a->fresh_drains;
    a->delivered += bytes;
    a->digest ^= fault::rftp_block_tag(block_idx, bytes);
  }
}

void Auditor::ff_cpu_cores(std::vector<const sim::Resource*>& out) const {
  out.clear();
  out.reserve(cores_.size());
  for (const auto& [res, cs] : cores_) out.push_back(res);
}

void Auditor::ff_cpu_snapshot(std::vector<sim::SimDuration>& out) const {
  out.clear();
  out.reserve(cores_.size() * metrics::kCpuCategoryCount);
  for (const auto& [res, cs] : cores_)
    for (std::size_t c = 0; c < metrics::kCpuCategoryCount; ++c)
      out.push_back(cs.accounted[c]);
}

bool Auditor::ff_cpu_apply(const std::vector<sim::SimDuration>& delta,
                           std::uint64_t k) {
  if (delta.size() != cores_.size() * metrics::kCpuCategoryCount)
    return false;
  std::size_t i = 0;
  for (auto& [res, cs] : cores_)
    for (std::size_t c = 0; c < metrics::kCpuCategoryCount; ++c)
      cs.accounted[c] += delta[i++] * static_cast<sim::SimDuration>(k);
  return true;
}

void Auditor::rftp_end(const void* sess, bool complete,
                       std::uint64_t delivered_bytes,
                       std::uint64_t sink_digest) {
  RftpAudit* a = rftp_find(sess, "end");
  if (a == nullptr) return;
  a->ended = true;
  a->complete = complete;
  if (a->delivered != delivered_bytes)
    violate("rftp.delivered-bytes",
            a->tag + ": session counted " + std::to_string(delivered_bytes) +
                " delivered bytes, audit counted " +
                std::to_string(a->delivered));
  if (a->digest != sink_digest)
    violate("rftp.sink-digest",
            a->tag + ": session digest " + std::to_string(sink_digest) +
                " != audited digest " + std::to_string(a->digest));
  if (complete) {
    // Exactly-once across crash epochs: every block drains fresh once,
    // plus exactly one extra drain per crash rollback.
    if (a->fresh_drains != a->block_count + a->rollbacks)
      violate("rftp.missing-blocks",
              a->tag + ": transfer completed with " +
                  std::to_string(a->fresh_drains) + " fresh drains for " +
                  std::to_string(a->block_count) + " blocks + " +
                  std::to_string(a->rollbacks) + " rollbacks");
    if (a->delivered != a->total_bytes)
      violate("rftp.byte-conservation",
              a->tag + ": transfer completed with " +
                  std::to_string(a->delivered) + " of " +
                  std::to_string(a->total_bytes) + " bytes delivered");
    // Analytic end-to-end digest: XOR of every block's coordinate tag.
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < a->block_count; ++i)
      expect ^= fault::rftp_block_tag(
          i, std::min<std::uint64_t>(a->block_bytes,
                                     a->total_bytes - i * a->block_bytes));
    if (a->digest != expect)
      violate("rftp.analytic-digest",
              a->tag + ": audited digest " + std::to_string(a->digest) +
                  " != analytic digest " + std::to_string(expect));
  }
}

// --- finalize / report ---

void Auditor::finalize() {
  for (const ResourceState& s : resources_)
    if (s.live) reconcile_resource(s);
  for (const auto& [res, cs] : cores_) {
    const ResourceState& rs = resources_[cs.res_idx];
    if (cs.total() != rs.sum_busy)
      violate("cpu.unaccounted-time",
              rs.name + ": " + std::to_string(rs.sum_busy) +
                  " ns of cycle service but " + std::to_string(cs.total()) +
                  " ns accounted across CPU categories");
  }
  for (const auto& [qp, l] : qps_) {
    if (l.rx + l.dropped != l.tx)
      violate("rdma.byte-ledger",
              l.who + ": " + std::to_string(l.tx) + " bytes sent but " +
                  std::to_string(l.rx) + " delivered + " +
                  std::to_string(l.dropped) + " dropped");
  }
  for (const Flow& f : flows_)
    if (f.out > f.in && !f.over_reported)
      violate("flow.over-delivery",
              f.name + ": delivered " + std::to_string(f.out) +
                  " bytes but only " + std::to_string(f.in) + " entered");
  for (const RftpAudit& a : rftp_) {
    if (!a.ended) continue;  // run() still in flight; nothing to settle yet
    for (std::size_t si = 0; si < a.streams.size(); ++si) {
      const StreamAudit& s = a.streams[si];
      if (s.received > s.granted)
        violate("rftp.credit-conservation",
                a.tag + ": stream " + std::to_string(si) + " received " +
                    std::to_string(s.received) + " credits but only " +
                    std::to_string(s.granted) + " were granted");
      if (s.consumed > s.received)
        violate("rftp.credit-conservation",
                a.tag + ": stream " + std::to_string(si) + " consumed " +
                    std::to_string(s.consumed) + " credits but only " +
                    std::to_string(s.received) + " were received");
      if (s.dead || !a.complete) continue;
      // On a completed transfer every live stream's tokens must be back in
      // the grant cycle; a token stuck on-wire is a leaked credit.
      for (std::size_t t = 0; t < s.tokens.size(); ++t)
        if (s.tokens[t] == TokenState::kOnWire)
          violate("rftp.credit-leak",
                  a.tag + ": stream " + std::to_string(si) + " token " +
                      std::to_string(t) +
                      " still on-wire after the transfer completed");
    }
  }
  if (policy_ == Policy::kAbortOnFinalize && !violations_.empty()) {
    std::ostringstream os;
    report(os);
    throw AuditFailure(os.str());
  }
}

void Auditor::report(std::ostream& os) const {
  if (violations_.empty()) {
    os << "audit: no violations (" << resources_.size() << " resources, "
       << cores_.size() << " cores, " << qps_.size() << " QP flows, "
       << flows_.size() << " byte flows, " << rftp_.size()
       << " rftp sessions audited)\n";
    return;
  }
  os << "audit: " << violations_.size() << " violation(s)\n";
  for (const Violation& v : violations_)
    os << "  t=" << v.when << "ns  " << v.rule << ": " << v.detail << "\n";
}

}  // namespace e2e::check
