// Umbrella header for experiment assembly.
#pragma once

#include "exp/runner.hpp"
#include "exp/san_section.hpp"
#include "exp/testbeds.hpp"
