// Fleet scenario implementation. Three phases:
//
//   1. Single-threaded setup: per-pair topology + sessions, then the
//      cross-shard ring links and connection establishment, run in exact
//      global event order (establishment coroutines hop between shards).
//   2. The parallel run: transfers plus ring flows under
//      sim::Cluster::run(), whose executed schedule is worker-count
//      independent.
//   3. Deterministic merge: QP ledgers folded in rank order, per-shard
//      auditors finalized, stats/trace shards merged, and a one-line
//      digest of every output (minus wall-clock) for golden tests.
#include "exp/fleet.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "check/audit.hpp"
#include "exp/runner.hpp"
#include "fault/injector.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/host.hpp"
#include "numa/process.hpp"
#include "rdma/cm.hpp"
#include "rftp/rftp.hpp"
#include "sim/cluster.hpp"
#include "stats/registry.hpp"
#include "trace/tracer.hpp"

namespace e2e::exp {

namespace {

/// Requester-side state for one cross-shard background flow: this pair's
/// sender host writes into the next pair's receiver host over a two-engine
/// link, so the cluster's outbox/merge path carries real RDMA traffic.
struct RingState {
  rdma::ConnectedPair* cp = nullptr;
  numa::Thread* post_th = nullptr;
  numa::Thread* reap_th = nullptr;
  mem::Buffer local{};
  mem::Buffer remote{};  // storage in the next pair's receiver process
  std::unique_ptr<sim::Semaphore> window;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t completed = 0;
  bool established = false;
};

/// Everything one fleet pair owns. One engine shard per pair; member order
/// is destruction-safe (session tears down before links/devices/hosts,
/// which tear down before the engine).
struct PairRig {
  std::unique_ptr<sim::Engine> eng;
  std::unique_ptr<stats::Registry> stats;
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<check::Auditor> audit;
  std::unique_ptr<numa::Host> a, b;
  std::unique_ptr<rdma::Device> da, db;
  std::unique_ptr<net::Link> link;  // intra-pair, single-engine
  std::unique_ptr<numa::Process> pa, pb;
  std::unique_ptr<net::Link> ring_link;  // to the next pair (cross-shard)
  std::unique_ptr<rdma::ConnectedPair> ring_cp;
  std::unique_ptr<rftp::RftpSession> sess;
  std::unique_ptr<rftp::MemorySource> src;
  std::unique_ptr<rftp::MemorySink> sink;
  std::unique_ptr<fault::FaultInjector> inj;
  RingState ring;
  rftp::TransferResult res{};
  bool done = false;
};

sim::Task<> fleet_establish(PairRig* rig, numa::Thread* tb) {
  co_await rig->ring_cp->establish(*rig->ring.post_th, *tb);
  rig->ring.established = true;
}

sim::Task<> fleet_ring_poster(RingState* st) {
  for (std::uint64_t i = 0; i < st->messages; ++i) {
    co_await st->window->acquire();
    rdma::SendWr wr;
    wr.wr_id = i;
    wr.op = rdma::Opcode::kWrite;
    wr.local = &st->local;
    wr.remote = rdma::RemoteKey{&st->remote};
    wr.bytes = st->bytes;
    co_await st->cp->a().post_send(*st->post_th, wr);
  }
}

sim::Task<> fleet_ring_reaper(RingState* st) {
  for (std::uint64_t i = 0; i < st->messages; ++i) {
    auto wc = co_await st->cp->a().send_cq().wait(*st->reap_th);
    if (!wc.success)
      throw std::runtime_error("fleet: ring write completion failed");
    ++st->completed;
    st->window->release();
  }
}

sim::Task<> fleet_transfer(PairRig* rig, std::uint64_t bytes) {
  rig->res = co_await rig->sess->run(*rig->src, *rig->sink, bytes);
  rig->done = true;
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FleetResult run_fleet(const FleetParams& p) {
  if (p.pairs < 1) throw std::invalid_argument("fleet: pairs must be >= 1");
  if (p.shards < 1 || p.shards > p.pairs)
    throw std::invalid_argument("fleet: shards must be in [1, pairs]");

  const int P = p.pairs;
  sim::Cluster cluster(p.shards);
  std::vector<std::unique_ptr<PairRig>> rigs;
  rigs.reserve(static_cast<std::size_t>(P));

  for (int i = 0; i < P; ++i) {
    auto rig = std::make_unique<PairRig>();
    rig->eng = std::make_unique<sim::Engine>();
    cluster.add(*rig->eng);
    sim::Engine& eng = *rig->eng;
    if (p.stats) {
      rig->stats = std::make_unique<stats::Registry>(eng);
      rig->stats->install();
    }
    if (p.trace) {
      rig->tracer = std::make_unique<trace::Tracer>(eng);
      rig->tracer->install();
    }
    if (p.audit) rig->audit = std::make_unique<check::Auditor>(eng);

    const std::string tag = "p" + std::to_string(i);
    rig->a = std::make_unique<numa::Host>(
        eng, model::front_end_lan_host(tag + "-a"));
    rig->b = std::make_unique<numa::Host>(
        eng, model::front_end_lan_host(tag + "-b"));
    rig->da =
        std::make_unique<rdma::Device>(*rig->a, rig->a->profile().nics[0]);
    rig->db =
        std::make_unique<rdma::Device>(*rig->b, rig->b->profile().nics[0]);
    rig->link = net::make_roce_lan(eng, tag + "-lan");
    rig->link->bind_endpoints(rig->a.get(), rig->b.get());
    rig->pa = std::make_unique<numa::Process>(
        *rig->a, tag + "-send", numa::NumaBinding::bound(rig->da->node()));
    rig->pb = std::make_unique<numa::Process>(
        *rig->b, tag + "-recv", numa::NumaBinding::bound(rig->db->node()));

    rftp::RftpConfig cfg;
    cfg.block_bytes = p.block_bytes;
    cfg.streams = p.streams;
    cfg.credits_per_stream = p.credits;
    cfg.checkpoint_blocks = p.checkpoint_blocks;
    cfg.fast_forward = p.fast_forward;  // inert under a Cluster (see hpp)
    rig->sess = std::make_unique<rftp::RftpSession>(
        rftp::EndpointConfig{rig->pa.get(), {rig->da.get()}},
        rftp::EndpointConfig{rig->pb.get(), {rig->db.get()}},
        std::vector<net::Link*>{rig->link.get()}, cfg);
    rig->src = std::make_unique<rftp::MemorySource>(p.bytes_per_pair,
                                                    numa::Placement::on(0));
    rig->sink = std::make_unique<rftp::MemorySink>();

    if (p.fault_seed != 0) {
      // Chaos stays shard-local: each pair draws its own plan against its
      // intra-pair link and session, so fault timing never depends on the
      // worker count.
      fault::FaultPlan::RandomParams rp;
      rp.links = 1;
      rp.qps = p.streams;
      rp.hosts = 2;
      rp.crashes = 1;
      auto plan = fault::FaultPlan::random(
          p.fault_seed + 1000003ull * static_cast<std::uint64_t>(i), rp);
      rig->inj = std::make_unique<fault::FaultInjector>(eng, std::move(plan));
      rig->inj->attach(*rig->link);
      auto* sess = rig->sess.get();
      const int streams = p.streams;
      rig->inj->set_qp_kill_handler(
          [sess, streams](int qp) { sess->kill_stream(qp % streams); });
      rig->inj->set_crash_handler([sess](int host, sim::SimDuration down) {
        sess->crash_host(host, down);
      });
      rig->inj->arm();
    }
    rigs.push_back(std::move(rig));
  }

  // Cross-shard ring: pair i's sender host writes into pair (i+1)%P's
  // receiver host. Needs at least two pairs to form a seam.
  const bool ring_on = P > 1 && p.ring_messages > 0;
  if (ring_on) {
    for (int i = 0; i < P; ++i) {
      PairRig& rig = *rigs[static_cast<std::size_t>(i)];
      PairRig& next = *rigs[static_cast<std::size_t>((i + 1) % P)];
      rig.ring_link = net::make_roce_lan(*rig.eng, *next.eng,
                                         "ring" + std::to_string(i));
      rig.ring_link->bind_endpoints(rig.a.get(), next.b.get());
      rig.ring_cp = std::make_unique<rdma::ConnectedPair>(*rig.da, *next.db,
                                                          *rig.ring_link);
      rig.ring.cp = rig.ring_cp.get();
      rig.ring.post_th = &rig.pa->spawn_thread(rig.da->node());
      rig.ring.reap_th = &rig.pa->spawn_thread(rig.da->node());
      rig.ring.local.placement =
          rig.pa->alloc(p.ring_msg_bytes, rig.da->node());
      rig.ring.remote.placement =
          next.pb->alloc(p.ring_msg_bytes, next.db->node());
      rig.ring.local.registered = rig.ring.remote.registered = true;
      rig.ring.window = std::make_unique<sim::Semaphore>(*rig.eng, 4);
      rig.ring.messages = p.ring_messages;
      rig.ring.bytes = p.ring_msg_bytes;
    }
    // Phase 1: connection establishment hops between shards with blocking
    // handshakes, so run it in exact global sequential order.
    for (int i = 0; i < P; ++i) {
      PairRig& rig = *rigs[static_cast<std::size_t>(i)];
      PairRig& next = *rigs[static_cast<std::size_t>((i + 1) % P)];
      numa::Thread& tb = next.pb->spawn_thread(next.db->node());
      sim::co_spawn(fleet_establish(&rig, &tb));
    }
    cluster.run_sequential();
    for (const auto& rig : rigs)
      if (!rig->ring.established)
        throw std::runtime_error("fleet: ring establish did not complete");
  }

  // Phase 2: the parallel run. Spawn order is pair order (deterministic).
  for (auto& rigp : rigs) {
    PairRig& rig = *rigp;
    sim::co_spawn(fleet_transfer(&rig, p.bytes_per_pair));
    if (ring_on) {
      sim::co_spawn(fleet_ring_poster(&rig.ring));
      sim::co_spawn(fleet_ring_reaper(&rig.ring));
    }
  }

  const std::uint64_t events0 = cluster.events_processed();
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run();
  FleetResult out;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.sim_events = cluster.events_processed() - events0;
  out.windows = cluster.windows();
  out.cross_posts = cluster.cross_posts();

  // Each ring flow's bytes ledger is split across two shards; fold the
  // ledgers (rank order) before finalizing each shard's auditor.
  if (p.audit) {
    std::vector<check::Auditor*> audits;
    for (const auto& rig : rigs) audits.push_back(rig->audit.get());
    check::Auditor::merge_qp_ledgers(audits);
    for (const auto& rig : rigs) {
      rig->audit->finalize();
      out.audit_ok = out.audit_ok && rig->audit->ok();
      out.audit_violations += rig->audit->violations().size();
    }
  }

  for (const auto& rigp : rigs) {
    const PairRig& rig = *rigp;
    out.complete = out.complete && rig.done && rig.res.complete;
    out.integrity_ok = out.integrity_ok && rig.res.integrity_ok;
    out.pair_gbps.push_back(rig.res.goodput_gbps);
    out.aggregate_gbps += rig.res.goodput_gbps;
    out.ring_completed += rig.ring.completed;
  }

  if (p.stats) {
    std::vector<const stats::Registry*> regs;
    for (const auto& rig : rigs) regs.push_back(rig->stats.get());
    std::ostringstream os;
    stats::Registry::write_merged_json(os, regs);
    out.stats_json = os.str();
  }
  if (p.trace) {
    std::vector<const trace::Tracer*> trs;
    for (const auto& rig : rigs) trs.push_back(rig->tracer.get());
    std::ostringstream os;
    trace::write_merged_chrome_trace(os, trs);
    out.trace_json = os.str();
  }

  // Deterministic fingerprint: every output except wall_seconds, printed
  // with exact integer / %.9g formatting.
  std::ostringstream dg;
  dg << "fleet-v1 pairs=" << P << " bytes=" << p.bytes_per_pair
     << " seed=" << p.fault_seed << " complete=" << out.complete
     << " integrity=" << out.integrity_ok
     << " audit_viol=" << out.audit_violations
     << " ring=" << out.ring_completed << " events=" << out.sim_events
     << " windows=" << out.windows << " cross=" << out.cross_posts << " t=[";
  for (int i = 0; i < P; ++i)
    dg << (i ? "," : "") << rigs[static_cast<std::size_t>(i)]->eng->now();
  dg << "] gbps=[";
  for (int i = 0; i < P; ++i) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9g",
                  out.pair_gbps[static_cast<std::size_t>(i)]);
    dg << (i ? "," : "") << buf;
  }
  dg << "]";
  if (p.stats) dg << " stats_fnv=" << fnv1a(out.stats_json);
  if (p.trace) dg << " trace_fnv=" << fnv1a(out.trace_json);
  out.digest = dg.str();

  // Ordered ring teardown: rig i's cross-engine ring_link holds a Resource
  // registered on rig (i+1)%P's engine, so the wraparound pair would
  // deregister from a destroyed engine if the rigs vector tore down
  // front-to-back. Drop connections then links across ALL rigs while every
  // engine is still alive; runs after the digest, so output is unaffected.
  for (auto& rig : rigs) {
    rig->ring.cp = nullptr;
    rig->ring_cp.reset();
    rig->ring_link.reset();
  }
  return out;
}

}  // namespace e2e::exp
