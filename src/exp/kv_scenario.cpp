// KV scenario implementation. Same three-phase shape as fleet.cpp:
//
//   1. Single-threaded setup, then registration + connection establishment
//      (including the cross-shard ring rpc connections) in exact global
//      sequential order.
//   2. The parallel closed-loop workload under sim::Cluster::run().
//   3. Deterministic merge: QP ledgers folded in rank order, latency
//      histograms folded across pairs, and a one-line digest of every
//      output (minus wall-clock) for golden tests.
#include "exp/kv_scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "apps/kv.hpp"
#include "check/audit.hpp"
#include "fault/injector.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/host.hpp"
#include "numa/process.hpp"
#include "rdma/cm.hpp"
#include "rpc/rpc.hpp"
#include "sim/cluster.hpp"
#include "stats/histogram.hpp"
#include "stats/registry.hpp"

namespace e2e::exp {

namespace {

/// Everything one kv pair owns. Member order is destruction-safe: rpc
/// endpoints (whose channels live on the engine) tear down before the
/// connections, which tear down before devices/hosts, before the engine.
struct KvRig {
  std::unique_ptr<sim::Engine> eng;
  std::unique_ptr<stats::Registry> stats;
  std::unique_ptr<check::Auditor> audit;
  std::unique_ptr<numa::Host> a, b;  // a = client, b = server
  std::unique_ptr<rdma::Device> da, db;
  std::unique_ptr<net::Link> link;  // intra-pair rack link
  std::unique_ptr<numa::Process> pa, pb;
  std::unique_ptr<rdma::ProtectionDomain> pd_a, pd_b;

  numa::Thread* c_post = nullptr;  // client post/reap
  numa::Thread* c_reap = nullptr;
  numa::Thread* s_post = nullptr;  // server post/reap
  numa::Thread* s_reap = nullptr;
  numa::Thread* c_rec = nullptr;  // fault-recovery handshake threads
  numa::Thread* s_rec = nullptr;

  mem::Buffer client_ring{}, server_ring{};
  std::unique_ptr<apps::KvStore> store;
  std::unique_ptr<apps::KvHandler> handler;
  std::unique_ptr<rdma::ConnectedPair> cp;  // rpc plane
  std::unique_ptr<rpc::RpcClient> client;
  std::unique_ptr<rpc::RpcServer> server;

  // One-sided GET plane: one QP per closed-loop worker, so each worker's
  // send CQ carries only its own READ completions.
  std::vector<std::unique_ptr<rdma::ConnectedPair>> read_cps;
  std::vector<numa::Thread*> read_th;
  mem::Buffer read_local{};

  // Cross-shard ring rpc: this rig's client into the next rig's server.
  // The b-side endpoint (ring_server) is built from the *next* rig's
  // process/threads/buffer, mirroring fleet's ring ownership.
  std::unique_ptr<net::Link> ring_link;
  std::unique_ptr<rdma::ConnectedPair> ring_cp;
  numa::Thread* ring_c_post = nullptr;
  numa::Thread* ring_c_reap = nullptr;
  numa::Thread* ring_s_post = nullptr;  // spawned from next->pb
  numa::Thread* ring_s_reap = nullptr;
  mem::Buffer ring_client_ring{}, ring_server_ring{};
  std::unique_ptr<rpc::RpcClient> ring_client;
  std::unique_ptr<rpc::RpcServer> ring_server;

  std::unique_ptr<fault::FaultInjector> inj;

  // Workload state.
  std::unique_ptr<sim::Rng> rng;
  std::unique_ptr<apps::Zipf> zipf;
  std::uint64_t next_op = 0;  // shared closed-loop op counter
  std::uint64_t ops_done = 0, gets = 0, puts = 0, remote_ops = 0;
  std::uint64_t failed = 0;
  int workers_live = 0;
  stats::Histogram get_lat, put_lat;
  sim::SimTime t_start = 0;
  sim::SimTime last_done = 0;
  bool established = false;
  bool ring_established = false;
};

sim::Task<> kv_establish(KvRig* rig) {
  co_await rig->pd_a->register_buffer(*rig->c_post, rig->client_ring);
  co_await rig->pd_b->register_buffer(*rig->s_post, rig->server_ring);
  co_await rig->store->register_all(*rig->pd_b, *rig->s_post);
  co_await rig->cp->establish(*rig->c_post, *rig->s_post);
  co_await rig->client->start();
  co_await rig->server->start();
  if (!rig->read_cps.empty()) {
    co_await rig->pd_a->register_buffer(*rig->c_post, rig->read_local);
    for (std::size_t w = 0; w < rig->read_cps.size(); ++w)
      co_await rig->read_cps[w]->establish(*rig->read_th[w], *rig->s_post);
  }
  rig->established = true;
}

sim::Task<> kv_ring_establish(KvRig* rig, KvRig* next) {
  co_await rig->pd_a->register_buffer(*rig->ring_c_post,
                                      rig->ring_client_ring);
  co_await next->pd_b->register_buffer(*rig->ring_s_post,
                                       rig->ring_server_ring);
  co_await rig->ring_cp->establish(*rig->ring_c_post, *rig->ring_s_post);
  co_await rig->ring_client->start();
  co_await rig->ring_server->start();
  rig->ring_established = true;
}

sim::Task<> kv_recover(KvRig* rig) {
  co_await rig->cp->reestablish(*rig->c_rec, *rig->s_rec);
}

/// One-sided GET: READ the index entry, then the value, from the shard's
/// registered regions. Retries ride out link-fault completions.
sim::Task<bool> kv_read_get(KvRig* rig, std::uint64_t key, int w) {
  rdma::QueuePair& qp = rig->read_cps[static_cast<std::size_t>(w)]->a();
  numa::Thread& th = *rig->read_th[static_cast<std::size_t>(w)];
  apps::KvStore::Shard& sh = rig->store->shard(rig->store->shard_of(key));
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (attempt > 0) co_await sim::Delay{*rig->eng, sim::kMillisecond};
    rdma::SendWr wr;
    wr.op = rdma::Opcode::kRead;
    wr.wr_id = key;
    wr.local = &rig->read_local;
    wr.bytes = apps::KvStore::kIndexEntryBytes;
    wr.remote = rdma::RemoteKey{&sh.index};
    co_await qp.post_send(th, wr);
    auto wc = co_await qp.send_cq().wait(th);
    if (!wc.success) continue;
    wr.bytes = rig->store->value_bytes();
    wr.remote = rdma::RemoteKey{&sh.values};
    co_await qp.post_send(th, wr);
    wc = co_await qp.send_cq().wait(th);
    if (wc.success) co_return true;
  }
  co_return false;
}

sim::Task<bool> kv_rpc_op(KvRig* rig, rpc::RpcClient* cl, bool put,
                          std::uint64_t key, std::uint64_t value_bytes,
                          std::uint64_t header_bytes) {
  apps::KvMsg m;
  m.op = put ? apps::KvMsg::Op::kPut : apps::KvMsg::Op::kGet;
  m.key = key;
  m.value_bytes = put ? value_bytes : 0;
  const std::uint64_t req_bytes = header_bytes + (put ? value_bytes : 0);
  auto rep = co_await cl->call(req_bytes, mem::make_msg<apps::KvMsg>(m));
  co_return rep.ok;
}

sim::Task<> kv_worker(KvRig* rig, const KvParams* p, int w,
                      std::uint64_t header_bytes) {
  while (rig->next_op < p->ops_per_pair) {
    const std::uint64_t op = rig->next_op++;
    const std::uint64_t key = rig->zipf->sample(*rig->rng);
    const bool put = rig->rng->chance(p->put_frac);
    const bool remote =
        rig->ring_client != nullptr && p->remote_every > 0 &&
        op % static_cast<std::uint64_t>(p->remote_every) == 0;
    const sim::SimTime t0 = rig->eng->now();
    bool ok;
    if (!put && p->get_via_read && !remote) {
      ok = co_await kv_read_get(rig, key, w);
    } else {
      rpc::RpcClient* cl = remote ? rig->ring_client.get() : rig->client.get();
      ok = co_await kv_rpc_op(rig, cl, put, key, p->value_bytes,
                              header_bytes);
    }
    const sim::SimTime now = rig->eng->now();
    (put ? rig->put_lat : rig->get_lat)
        .record(static_cast<std::uint64_t>(now - t0));
    rig->last_done = std::max(rig->last_done, now);
    ++rig->ops_done;
    if (put)
      ++rig->puts;
    else
      ++rig->gets;
    if (remote) ++rig->remote_ops;
    if (!ok) ++rig->failed;
  }
  --rig->workers_live;
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

KvResult run_kv(const KvParams& p) {
  if (p.pairs < 1) throw std::invalid_argument("kv: pairs must be >= 1");
  if (p.shards < 1 || p.shards > p.pairs)
    throw std::invalid_argument("kv: shards must be in [1, pairs]");
  if (p.depth < 1) throw std::invalid_argument("kv: depth must be >= 1");
  if (p.ops_per_pair < 1)
    throw std::invalid_argument("kv: ops must be >= 1");
  if (p.put_frac < 0.0 || p.put_frac > 1.0)
    throw std::invalid_argument("kv: put_frac must be in [0, 1]");
  if (p.remote_every < 0)
    throw std::invalid_argument("kv: remote_every must be >= 0");

  const rpc::RpcConfig cfg = [&] {
    rpc::RpcConfig c;
    c.window = static_cast<std::size_t>(p.depth);
    c.recv_ring = std::max<std::size_t>(64, 2 * c.window);
    return c;
  }();
  const std::uint64_t max_msg = cfg.header_bytes + p.value_bytes;

  const int P = p.pairs;
  sim::Cluster cluster(p.shards);
  std::vector<std::unique_ptr<KvRig>> rigs;
  rigs.reserve(static_cast<std::size_t>(P));

  for (int i = 0; i < P; ++i) {
    auto rig = std::make_unique<KvRig>();
    rig->eng = std::make_unique<sim::Engine>();
    cluster.add(*rig->eng);
    sim::Engine& eng = *rig->eng;
    if (p.stats) {
      rig->stats = std::make_unique<stats::Registry>(eng);
      rig->stats->install();
    }
    if (p.audit) rig->audit = std::make_unique<check::Auditor>(eng);

    const std::string tag = "kv" + std::to_string(i);
    rig->a = std::make_unique<numa::Host>(
        eng, model::front_end_lan_host(tag + "-c"));
    rig->b = std::make_unique<numa::Host>(
        eng, model::front_end_lan_host(tag + "-s"));
    rig->da =
        std::make_unique<rdma::Device>(*rig->a, rig->a->profile().nics[0]);
    rig->db =
        std::make_unique<rdma::Device>(*rig->b, rig->b->profile().nics[0]);
    rig->link = net::make_roce_rack(eng, tag + "-rack");
    rig->link->bind_endpoints(rig->a.get(), rig->b.get());
    rig->pa = std::make_unique<numa::Process>(
        *rig->a, tag + "-cli", numa::NumaBinding::bound(rig->da->node()));
    rig->pb = std::make_unique<numa::Process>(
        *rig->b, tag + "-srv", numa::NumaBinding::bound(rig->db->node()));
    rig->pd_a = std::make_unique<rdma::ProtectionDomain>(*rig->a);
    rig->pd_b = std::make_unique<rdma::ProtectionDomain>(*rig->b);

    rig->c_post = &rig->pa->spawn_thread(rig->da->node());
    rig->c_reap = &rig->pa->spawn_thread(rig->da->node());
    rig->s_post = &rig->pb->spawn_thread(rig->db->node());
    rig->s_reap = &rig->pb->spawn_thread(rig->db->node());
    rig->c_rec = &rig->pa->spawn_thread(rig->da->node());
    rig->s_rec = &rig->pb->spawn_thread(rig->db->node());

    rig->client_ring.bytes = max_msg;
    rig->client_ring.placement = rig->pa->alloc(max_msg, rig->da->node());
    rig->server_ring.bytes = max_msg;
    rig->server_ring.placement = rig->pb->alloc(max_msg, rig->db->node());

    rig->store = std::make_unique<apps::KvStore>(*rig->pb, p.keys,
                                                 p.value_bytes,
                                                 p.store_shards);
    rig->handler = std::make_unique<apps::KvHandler>(
        *rig->store, rig->server_ring, cfg.header_bytes);
    rig->cp = std::make_unique<rdma::ConnectedPair>(*rig->da, *rig->db,
                                                    *rig->link);
    rig->client = std::make_unique<rpc::RpcClient>(
        rig->cp->a(), *rig->c_post, *rig->c_reap, rig->client_ring, cfg);
    rig->server = std::make_unique<rpc::RpcServer>(
        rig->cp->b(), *rig->s_post, *rig->s_reap, rig->server_ring,
        *rig->handler, cfg);

    if (p.get_via_read) {
      rig->read_local.bytes =
          std::max<std::uint64_t>(p.value_bytes,
                                  apps::KvStore::kIndexEntryBytes);
      rig->read_local.placement =
          rig->pa->alloc(rig->read_local.bytes, rig->da->node());
      for (int w = 0; w < p.depth; ++w) {
        rig->read_th.push_back(&rig->pa->spawn_thread(rig->da->node()));
        rig->read_cps.push_back(std::make_unique<rdma::ConnectedPair>(
            *rig->da, *rig->db, *rig->link));
      }
    }

    rig->rng = std::make_unique<sim::Rng>(
        p.seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(i + 1));
    rig->zipf = std::make_unique<apps::Zipf>(p.keys, p.zipf_theta);

    if (p.fault_seed != 0) {
      // Chaos stays shard-local: each pair draws its own plan against its
      // intra-pair link and rpc connection. The kill handler drops the rpc
      // plane into its error epoch; client retry timers carry the calls
      // across the outage while one recovery coroutine re-establishes.
      fault::FaultPlan::RandomParams rp;
      rp.links = 1;
      rp.qps = 1;
      rp.qp_kills = 2;
      auto plan = fault::FaultPlan::random(
          p.fault_seed + 1000003ull * static_cast<std::uint64_t>(i), rp);
      rig->inj = std::make_unique<fault::FaultInjector>(eng, std::move(plan));
      rig->inj->attach(*rig->link);
      KvRig* r = rig.get();
      rig->inj->set_qp_kill_handler([r](int) {
        r->cp->kill();
        sim::co_spawn(kv_recover(r));
      });
      rig->inj->arm();
    }
    rigs.push_back(std::move(rig));
  }

  // Cross-shard rpc ring: pair i's client calls into pair (i+1)%P's
  // server. Needs at least two pairs to form a seam.
  const bool ring_on = P > 1 && p.remote_every > 0;
  if (ring_on) {
    for (int i = 0; i < P; ++i) {
      KvRig& rig = *rigs[static_cast<std::size_t>(i)];
      KvRig& next = *rigs[static_cast<std::size_t>((i + 1) % P)];
      rig.ring_link = net::make_roce_rack(*rig.eng, *next.eng,
                                          "kvring" + std::to_string(i));
      rig.ring_link->bind_endpoints(rig.a.get(), next.b.get());
      rig.ring_cp = std::make_unique<rdma::ConnectedPair>(*rig.da, *next.db,
                                                          *rig.ring_link);
      rig.ring_c_post = &rig.pa->spawn_thread(rig.da->node());
      rig.ring_c_reap = &rig.pa->spawn_thread(rig.da->node());
      rig.ring_s_post = &next.pb->spawn_thread(next.db->node());
      rig.ring_s_reap = &next.pb->spawn_thread(next.db->node());
      rig.ring_client_ring.bytes = max_msg;
      rig.ring_client_ring.placement =
          rig.pa->alloc(max_msg, rig.da->node());
      rig.ring_server_ring.bytes = max_msg;
      rig.ring_server_ring.placement =
          next.pb->alloc(max_msg, next.db->node());
      rig.ring_client = std::make_unique<rpc::RpcClient>(
          rig.ring_cp->a(), *rig.ring_c_post, *rig.ring_c_reap,
          rig.ring_client_ring, cfg);
      rig.ring_server = std::make_unique<rpc::RpcServer>(
          rig.ring_cp->b(), *rig.ring_s_post, *rig.ring_s_reap,
          rig.ring_server_ring, *next.handler, cfg);
    }
  }

  // Phase 1: registration + establishment, exact global sequential order
  // (ring handshakes and ring-server ring posts hop between shards).
  for (int i = 0; i < P; ++i)
    sim::co_spawn(kv_establish(rigs[static_cast<std::size_t>(i)].get()));
  if (ring_on) {
    for (int i = 0; i < P; ++i)
      sim::co_spawn(kv_ring_establish(
          rigs[static_cast<std::size_t>(i)].get(),
          rigs[static_cast<std::size_t>((i + 1) % P)].get()));
  }
  cluster.run_sequential();
  for (const auto& rig : rigs) {
    if (!rig->established)
      throw std::runtime_error("kv: establish did not complete");
    if (ring_on && !rig->ring_established)
      throw std::runtime_error("kv: ring establish did not complete");
  }

  // Phase 2: the parallel closed loop. Spawn order is pair order.
  const std::uint64_t header_bytes = cfg.header_bytes;
  for (auto& rigp : rigs) {
    KvRig& rig = *rigp;
    rig.t_start = rig.eng->now();
    rig.workers_live = p.depth;
    for (int w = 0; w < p.depth; ++w)
      sim::co_spawn(kv_worker(&rig, &p, w, header_bytes));
  }

  const std::uint64_t events0 = cluster.events_processed();
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run();
  KvResult out;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.sim_events = cluster.events_processed() - events0;
  out.windows = cluster.windows();
  out.cross_posts = cluster.cross_posts();

  // The ring connections' byte ledgers are split across two shards; fold
  // them (rank order) before finalizing each shard's auditor.
  if (p.audit) {
    std::vector<check::Auditor*> audits;
    for (const auto& rig : rigs) audits.push_back(rig->audit.get());
    check::Auditor::merge_qp_ledgers(audits);
    for (const auto& rig : rigs) {
      rig->audit->finalize();
      out.audit_ok = out.audit_ok && rig->audit->ok();
      out.audit_violations += rig->audit->violations().size();
    }
  }

  stats::Histogram get_lat, put_lat;
  for (const auto& rigp : rigs) {
    const KvRig& rig = *rigp;
    out.complete = out.complete && rig.workers_live == 0 &&
                   rig.ops_done == p.ops_per_pair;
    if (p.fault_seed == 0) out.complete = out.complete && rig.failed == 0;
    out.ops_done += rig.ops_done;
    out.gets += rig.gets;
    out.puts += rig.puts;
    out.remote_ops += rig.remote_ops;
    out.failed_ops += rig.failed;
    out.rpc_retries += rig.client->retries();
    out.stale_responses += rig.client->stale_responses();
    out.calls_served += rig.handler->gets() + rig.handler->puts();
    out.doorbells += rig.client->doorbells() + rig.server->doorbells();
    out.doorbell_wrs +=
        rig.client->doorbell_wrs() + rig.server->doorbell_wrs();
    out.poll_batches +=
        rig.client->poll_batches() + rig.server->poll_batches();
    out.poll_cqes += rig.client->poll_cqes() + rig.server->poll_cqes();
    if (rig.ring_client) {
      out.rpc_retries += rig.ring_client->retries();
      out.stale_responses += rig.ring_client->stale_responses();
      out.doorbells +=
          rig.ring_client->doorbells() + rig.ring_server->doorbells();
      out.doorbell_wrs += rig.ring_client->doorbell_wrs() +
                          rig.ring_server->doorbell_wrs();
      out.poll_batches += rig.ring_client->poll_batches() +
                          rig.ring_server->poll_batches();
      out.poll_cqes +=
          rig.ring_client->poll_cqes() + rig.ring_server->poll_cqes();
    }
    get_lat.merge(rig.get_lat);
    put_lat.merge(rig.put_lat);
    const sim::SimTime span = rig.last_done - rig.t_start;
    const double mops =
        span > 0 ? static_cast<double>(rig.ops_done) * 1e3 /
                       static_cast<double>(span)
                 : 0.0;
    out.pair_mops.push_back(mops);
    out.aggregate_mops += mops;
  }
  if (out.gets > 0) {
    out.get_p50_ns = get_lat.p50();
    out.get_p99_ns = get_lat.p99();
    out.get_p999_ns = get_lat.p999();
  }
  if (out.puts > 0) {
    out.put_p50_ns = put_lat.p50();
    out.put_p99_ns = put_lat.p99();
    out.put_p999_ns = put_lat.p999();
  }

  if (p.stats) {
    std::vector<const stats::Registry*> regs;
    for (const auto& rig : rigs) regs.push_back(rig->stats.get());
    std::ostringstream os;
    stats::Registry::write_merged_json(os, regs);
    out.stats_json = os.str();
  }

  // Deterministic fingerprint: every output except wall_seconds.
  std::ostringstream dg;
  char buf[48];
  dg << "kv-v1 pairs=" << P << " keys=" << p.keys
     << " ops=" << p.ops_per_pair << " value=" << p.value_bytes
     << " depth=" << p.depth << " mode=" << (p.get_via_read ? "read" : "rpc")
     << " store_shards=" << p.store_shards << " seed=" << p.seed
     << " fseed=" << p.fault_seed << " complete=" << out.complete
     << " audit_viol=" << out.audit_violations << " gets=" << out.gets
     << " puts=" << out.puts << " remote=" << out.remote_ops
     << " failed=" << out.failed_ops << " retries=" << out.rpc_retries
     << " stale=" << out.stale_responses << " served=" << out.calls_served
     << " doorbells=" << out.doorbells << "/" << out.doorbell_wrs
     << " polls=" << out.poll_batches << "/" << out.poll_cqes
     << " events=" << out.sim_events << " windows=" << out.windows
     << " cross=" << out.cross_posts << " t=[";
  for (int i = 0; i < P; ++i)
    dg << (i ? "," : "") << rigs[static_cast<std::size_t>(i)]->eng->now();
  dg << "] mops=[";
  for (int i = 0; i < P; ++i) {
    std::snprintf(buf, sizeof buf, "%.9g",
                  out.pair_mops[static_cast<std::size_t>(i)]);
    dg << (i ? "," : "") << buf;
  }
  dg << "] get_ns=[" << out.get_p50_ns << "," << out.get_p99_ns << ","
     << out.get_p999_ns << "] put_ns=[" << out.put_p50_ns << ","
     << out.put_p99_ns << "," << out.put_p999_ns << "]";
  if (p.stats) dg << " stats_fnv=" << fnv1a(out.stats_json);
  out.digest = dg.str();

  // Ordered ring teardown. A cross-engine Link owns one Resource per
  // direction, each registered on its source engine — so rig i's ring_link
  // holds a Resource registered on rig (i+1)%P's engine, and the last
  // rig's partner is rig 0. Letting the rigs vector destruct front-to-back
  // would have that Resource deregister from an already-destroyed engine.
  // Tear the ring down across ALL rigs (endpoints, then connection, then
  // link) while every engine is still alive; this runs after the digest,
  // so no observable output depends on it.
  for (auto& rigp : rigs) {
    rigp->ring_client.reset();
    rigp->ring_server.reset();
  }
  for (auto& rigp : rigs) {
    rigp->ring_cp.reset();
    rigp->ring_link.reset();
  }
  return out;
}

}  // namespace e2e::exp
