// Synchronous driver for simulation tasks.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace e2e::exp {

namespace detail {
template <typename T>
struct Box {
  std::optional<T> value;
  std::exception_ptr error;
};

template <typename T>
sim::Task<> wrap(sim::Task<T> t, std::shared_ptr<Box<T>> box) {
  try {
    box->value = co_await std::move(t);
  } catch (...) {
    box->error = std::current_exception();
  }
}

struct VoidBox {
  bool done = false;
  std::exception_ptr error;
};

inline sim::Task<> wrap_void(sim::Task<> t, std::shared_ptr<VoidBox> box) {
  try {
    co_await std::move(t);
    box->done = true;
  } catch (...) {
    box->error = std::current_exception();
  }
}
}  // namespace detail

/// Spawns `task` and runs the engine until the event queue drains.
/// Returns the task's value, rethrows its exception, or throws if the task
/// never completed (deadlock).
template <typename T>
T run_task(sim::Engine& eng, sim::Task<T> task) {
  auto box = std::make_shared<detail::Box<T>>();
  sim::co_spawn(detail::wrap<T>(std::move(task), box));
  eng.run();
  if (box->error) std::rethrow_exception(box->error);
  if (!box->value)
    throw std::runtime_error("run_task: task did not complete (deadlock?)");
  return std::move(*box->value);
}

inline void run_task(sim::Engine& eng, sim::Task<> task) {
  auto box = std::make_shared<detail::VoidBox>();
  sim::co_spawn(detail::wrap_void(std::move(task), box));
  eng.run();
  if (box->error) std::rethrow_exception(box->error);
  if (!box->done)
    throw std::runtime_error("run_task: task did not complete (deadlock?)");
}

}  // namespace e2e::exp
