#include "exp/san_section.hpp"

#include <stdexcept>

namespace e2e::exp {

SanSection::SanSection(sim::Engine& eng, numa::Host& fe_host,
                       std::vector<rdma::Device*> fe_ib, std::string name,
                       SanConfig cfg)
    : eng_(eng), fe_host_(fe_host), fe_ib_(std::move(fe_ib)), cfg_(cfg) {
  if (fe_ib_.size() != 2)
    throw std::invalid_argument("SAN section expects two front-end IB ports");

  target_host_ = std::make_unique<numa::Host>(
      eng, model::back_end_lan_host(name + "-target"));
  for (const auto& nic : target_host_->profile().nics)
    tgt_ib_.push_back(std::make_unique<rdma::Device>(*target_host_, nic));

  for (int i = 0; i < 2; ++i) {
    links_.push_back(net::make_ib_lan(eng, name + "-ib" + std::to_string(i)));
    links_.back()->bind_endpoints(&fe_host_, target_host_.get());
  }

  tmpfs_ = std::make_unique<mem::Tmpfs>(*target_host_);
  // With either static numactl tuning or the dynamic libnuma scheduler the
  // target allocates LUN pages and staging buffers node-locally; only the
  // fully untuned baseline interleaves.
  const bool bound_memory = cfg_.numa_tuned || cfg_.libnuma_dynamic;

  // LUN backing files: pinned per serving node when tuned (mpol=bind),
  // interleaved otherwise. LUN l is served over link (l % 2) whose target
  // NIC sits on node (l % 2).
  for (int l = 0; l < cfg_.luns; ++l) {
    const int session = l % 2;
    const numa::NodeId node = tgt_ib_[session]->node();
    auto& file = tmpfs_->create(
        "lun" + std::to_string(l), cfg_.lun_bytes,
        bound_memory ? numa::MemPolicy::kBind : numa::MemPolicy::kInterleave,
        node);
    luns_.push_back(
        std::make_unique<scsi::Lun>(static_cast<std::uint32_t>(l), *tmpfs_,
                                    file));
  }

  // Target processes: per-node numactl binding when tuned, one untuned
  // process otherwise.
  if (cfg_.numa_tuned) {
    for (int n = 0; n < target_host_->node_count(); ++n)
      tgt_procs_.push_back(std::make_unique<numa::Process>(
          *target_host_, name + "-tgtd" + std::to_string(n),
          numa::NumaBinding::bound(n)));
  } else {
    tgt_procs_.push_back(std::make_unique<numa::Process>(
        *target_host_, name + "-tgtd", numa::NumaBinding::os_default()));
  }

  init_proc_ = std::make_unique<numa::Process>(
      fe_host_, name + "-initiator",
      cfg_.numa_tuned ? numa::NumaBinding{numa::SchedPolicy::kBindNode,
                                          numa::MemPolicy::kBind,
                                          numa::kAnyNode}
                      : numa::NumaBinding::os_default());

  // One iSER session per link; one Target per session.
  for (int s = 0; s < 2; ++s) {
    numa::Process& tproc =
        *tgt_procs_[cfg_.numa_tuned ? static_cast<std::size_t>(s) : 0];
    sessions_.push_back(std::make_unique<iser::IserSession>(
        *fe_ib_[s], *tgt_ib_[s], *links_[s], *init_proc_, tproc));

    staging_pools_.push_back(std::make_unique<mem::BufferPool>(
        *target_host_, name + "-staging" + std::to_string(s),
        static_cast<std::size_t>(cfg_.staging_buffers_per_target),
        cfg_.staging_bytes,
        bound_memory ? numa::MemPolicy::kBind : numa::MemPolicy::kInterleave,
        tgt_ib_[s]->node()));
    staging_pools_.back()->mark_registered();

    std::vector<scsi::Lun*> subset;
    for (int l = s; l < cfg_.luns; l += 2) subset.push_back(luns_[l].get());
    targets_.push_back(std::make_unique<iscsi::Target>(
        tproc, sessions_.back()->target_ep(), subset, *staging_pools_.back(),
        cfg_.libnuma_dynamic ? iscsi::TargetSched::kNumaRouted
                             : iscsi::TargetSched::kShared));

    initiators_.push_back(std::make_unique<iscsi::Initiator>(
        *init_proc_, sessions_.back()->initiator_ep()));
  }

  for (int l = 0; l < cfg_.luns; ++l)
    lun_devices_.push_back(std::make_unique<blk::RemoteBlockDevice>(
        *initiators_[static_cast<std::size_t>(l % 2)],
        static_cast<std::uint32_t>(l), cfg_.lun_bytes));

  std::vector<blk::BlockDevice*> members;
  for (auto& d : lun_devices_) members.push_back(d.get());
  striped_ =
      std::make_unique<blk::StripedBlockDevice>(members, 4ull << 20);
}

sim::Task<> SanSection::start() {
  for (int s = 0; s < 2; ++s) {
    numa::Process& tproc =
        *tgt_procs_[cfg_.numa_tuned ? static_cast<std::size_t>(s) : 0];
    numa::Thread& ith = init_proc_->spawn_thread(fe_ib_[s]->node());
    numa::Thread& tth = tproc.spawn_thread(tgt_ib_[s]->node());
    co_await sessions_[s]->start(ith, tth);

    const int workers =
        cfg_.threads_per_lun * (cfg_.luns / 2 + (s == 0 ? cfg_.luns % 2 : 0));
    targets_[s]->start(workers);

    const iscsi::LoginParams proposal{};
    const bool ok = co_await initiators_[s]->login(ith, proposal);
    if (!ok) throw std::runtime_error("iSER login failed");
    initiators_[s]->start_dispatcher(ith);
  }
}

}  // namespace e2e::exp
