// Back-end SAN section: one target host exporting LUNs to a front-end
// host over two InfiniBand FDR links via iSER (Fig. 5's back-end half).
//
// Tuned mode (the paper's NUMA tuning):
//   * one target *process* per NUMA node, numactl-bound (cpu + memory);
//   * tmpfs LUN files pinned to the serving node via mpol=bind;
//   * each node's process serves the iSER session of the NIC on its node;
//   * LUNs are split across the two links (0,2,4 -> link0; 1,3,5 -> link1).
// Untuned mode: a single target process under the stock scheduler with
// interleaved LUN files and first-touch staging memory.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blk/block_device.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/target.hpp"
#include "iser/session.hpp"
#include "mem/buffer_pool.hpp"
#include "mem/tmpfs.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/numa.hpp"
#include "rdma/device.hpp"

namespace e2e::exp {

struct SanConfig {
  bool numa_tuned = true;
  /// Extension (paper's deferred future work): keep a single un-bound
  /// target process but dispatch each SCSI task to a worker on the LUN's
  /// home node via the libnuma-style scheduler (iscsi::TargetSched::
  /// kNumaRouted). Only meaningful with numa_tuned == false.
  bool libnuma_dynamic = false;
  int luns = 6;
  std::uint64_t lun_bytes = 50ull << 30;  // 50 GB each, as the paper
  std::uint64_t staging_bytes = 8ull << 20;
  int staging_buffers_per_target = 48;
  int threads_per_lun = 4;  // the paper's optimum
};

class SanSection {
 public:
  /// `fe_host` is the front-end (initiator) host; `fe_ib` its two IB
  /// devices (index i connects over link i).
  SanSection(sim::Engine& eng, numa::Host& fe_host,
             std::vector<rdma::Device*> fe_ib, std::string name,
             SanConfig cfg);
  SanSection(const SanSection&) = delete;
  SanSection& operator=(const SanSection&) = delete;

  /// Brings up sessions, logins, dispatchers and target workers.
  sim::Task<> start();

  [[nodiscard]] numa::Host& target_host() noexcept { return *target_host_; }
  [[nodiscard]] numa::Host& fe_host() noexcept { return fe_host_; }
  [[nodiscard]] const SanConfig& config() const noexcept { return cfg_; }

  /// Remote block device for one LUN (as seen from the front-end).
  [[nodiscard]] blk::RemoteBlockDevice& lun_device(int lun) {
    return *lun_devices_.at(static_cast<std::size_t>(lun));
  }
  /// All six LUNs striped RAID-0 (the front-end's logical volume).
  [[nodiscard]] blk::StripedBlockDevice& striped() { return *striped_; }

  /// NIC node on the front-end serving `lun` (for binding I/O threads).
  [[nodiscard]] numa::NodeId lun_fe_node(int lun) const {
    return fe_ib_.at(static_cast<std::size_t>(lun) % fe_ib_.size())->node();
  }

  /// NIC node on the front-end that a byte offset of the striped volume is
  /// served through (for RFTP's locality-aware block routing).
  [[nodiscard]] numa::NodeId fe_node_of(std::uint64_t offset) const {
    const std::uint64_t stripe = striped_->stripe_bytes();
    const auto member = static_cast<int>((offset / stripe) %
                                         striped_->member_count());
    return lun_fe_node(member);
  }

  [[nodiscard]] metrics::CpuUsage target_usage() const {
    return target_host_->total_usage();
  }
  [[nodiscard]] std::vector<iscsi::Target*> targets() {
    std::vector<iscsi::Target*> out;
    for (auto& t : targets_) out.push_back(t.get());
    return out;
  }
  [[nodiscard]] numa::Process& initiator_process() noexcept {
    return *init_proc_;
  }

 private:
  sim::Engine& eng_;
  numa::Host& fe_host_;
  std::vector<rdma::Device*> fe_ib_;
  SanConfig cfg_;

  std::unique_ptr<numa::Host> target_host_;
  std::vector<std::unique_ptr<rdma::Device>> tgt_ib_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::unique_ptr<mem::Tmpfs> tmpfs_;
  std::vector<std::unique_ptr<scsi::Lun>> luns_;
  std::vector<std::unique_ptr<numa::Process>> tgt_procs_;
  std::unique_ptr<numa::Process> init_proc_;
  std::vector<std::unique_ptr<mem::BufferPool>> staging_pools_;
  std::vector<std::unique_ptr<iser::IserSession>> sessions_;
  std::vector<std::unique_ptr<iscsi::Target>> targets_;
  std::vector<std::unique_ptr<iscsi::Initiator>> initiators_;
  std::vector<std::unique_ptr<blk::RemoteBlockDevice>> lun_devices_;
  std::unique_ptr<blk::StripedBlockDevice> striped_;
};

}  // namespace e2e::exp
