#include "exp/testbeds.hpp"

#include <algorithm>

#include "metrics/throughput.hpp"

namespace e2e::exp {

model::HostProfile front_end_with_ib(const std::string& name) {
  auto h = model::front_end_lan_host(name);
  h.nics.push_back(
      {"ib0", model::LinkType::kInfiniBand, 56.0, 65520, 0, 63.0});
  h.nics.push_back(
      {"ib1", model::LinkType::kInfiniBand, 56.0, 65520, 1, 63.0});
  return h;
}

namespace {
std::vector<std::unique_ptr<rdma::Device>> make_devices(numa::Host& host) {
  std::vector<std::unique_ptr<rdma::Device>> devs;
  for (const auto& nic : host.profile().nics)
    devs.push_back(std::make_unique<rdma::Device>(host, nic));
  return devs;
}
}  // namespace

// --- FrontEndPair ---

FrontEndPair::FrontEndPair() {
  a = std::make_unique<numa::Host>(eng, model::front_end_lan_host("fe-a"));
  b = std::make_unique<numa::Host>(eng, model::front_end_lan_host("fe-b"));
  a_roce = make_devices(*a);
  b_roce = make_devices(*b);
  for (int i = 0; i < 3; ++i) {
    links.push_back(net::make_roce_lan(eng, "roce" + std::to_string(i)));
    links.back()->bind_endpoints(a.get(), b.get());
  }
}

std::vector<apps::IperfLink> FrontEndPair::iperf_links() const {
  std::vector<apps::IperfLink> out;
  for (std::size_t i = 0; i < links.size(); ++i)
    out.push_back({links[i].get(), a_roce[i]->node(), b_roce[i]->node()});
  return out;
}

std::vector<net::Link*> FrontEndPair::link_ptrs() const {
  std::vector<net::Link*> out;
  for (const auto& l : links) out.push_back(l.get());
  return out;
}

std::vector<rdma::Device*> FrontEndPair::a_devs() const {
  std::vector<rdma::Device*> out;
  for (const auto& d : a_roce) out.push_back(d.get());
  return out;
}

std::vector<rdma::Device*> FrontEndPair::b_devs() const {
  std::vector<rdma::Device*> out;
  for (const auto& d : b_roce) out.push_back(d.get());
  return out;
}

// --- SanTestbed ---

SanTestbed::SanTestbed(SanConfig cfg) {
  fe = std::make_unique<numa::Host>(eng, front_end_with_ib("fe-init"));
  fe_devs = make_devices(*fe);
  // IB devices are profile entries 3 and 4.
  san = std::make_unique<SanSection>(
      eng, *fe, std::vector<rdma::Device*>{fe_devs[3].get(), fe_devs[4].get()},
      "san", cfg);
}

void SanTestbed::start() { run_task(eng, san->start()); }

SanTestbed::FioReport SanTestbed::run_fio(const apps::FioOptions& opts,
                                          int threads_per_lun) {
  const SanConfig& scfg = san->config();
  numa::Process fio_proc(*fe, "fio",
                         numa::NumaBinding{numa::SchedPolicy::kBindNode,
                                           numa::MemPolicy::kBind,
                                           numa::kAnyNode});
  auto counters = std::make_unique<apps::FioCounters>();
  const metrics::CpuUsage base = san->target_usage();
  const sim::SimTime t0 = eng.now();

  for (int l = 0; l < scfg.luns; ++l) {
    const numa::NodeId node = san->lun_fe_node(l);
    // Block-aligned per-thread region within the LUN.
    std::uint64_t region =
        scfg.lun_bytes / static_cast<std::uint64_t>(threads_per_lun);
    region -= region % opts.block_bytes;
    for (int t = 0; t < threads_per_lun; ++t) {
      numa::Thread& th = fio_proc.spawn_thread(node);
      const numa::Placement buf = fio_proc.alloc(opts.block_bytes, node);
      sim::co_spawn(apps::fio_worker(
          th, san->lun_device(l), opts,
          static_cast<std::uint64_t>(t) * region, region, buf,
          counters.get()));
    }
  }

  eng.run_until(t0 + opts.duration);

  FioReport r;
  r.gbps = metrics::gbps(counters->bytes, opts.duration);
  r.ios = counters->ios;
  r.target_usage = san->target_usage().since(base);
  r.target_cpu_pct = r.target_usage.total_percent(opts.duration);
  // Drain in-flight I/O so back-to-back runs start clean.
  eng.run();
  return r;
}

// --- EndToEndTestbed ---

EndToEndTestbed::EndToEndTestbed(bool tuned, std::uint64_t dataset)
    : dataset_bytes(dataset), numa_tuned(tuned) {
  src_fe = std::make_unique<numa::Host>(eng, front_end_with_ib("src-fe"));
  dst_fe = std::make_unique<numa::Host>(eng, front_end_with_ib("dst-fe"));
  src_devs = make_devices(*src_fe);
  dst_devs = make_devices(*dst_fe);
  for (int i = 0; i < 3; ++i) {
    roce_links.push_back(net::make_roce_lan(eng, "fe" + std::to_string(i)));
    roce_links.back()->bind_endpoints(src_fe.get(), dst_fe.get());
  }

  SanConfig scfg;
  scfg.numa_tuned = tuned;
  src_san = std::make_unique<SanSection>(
      eng, *src_fe,
      std::vector<rdma::Device*>{src_devs[3].get(), src_devs[4].get()},
      "src", scfg);
  dst_san = std::make_unique<SanSection>(
      eng, *dst_fe,
      std::vector<rdma::Device*>{dst_devs[3].get(), dst_devs[4].get()},
      "dst", scfg);

  // Kernel context (page cache + flusher) and XFS on both front-ends.
  src_kernel = std::make_unique<numa::Process>(
      *src_fe, "kernel", numa::NumaBinding::os_default());
  dst_kernel = std::make_unique<numa::Process>(
      *dst_fe, "kernel", numa::NumaBinding::os_default());
  src_cache = std::make_unique<blk::PageCache>(*src_fe, 16ull << 30,
                                               2ull << 30);
  dst_cache = std::make_unique<blk::PageCache>(*dst_fe, 16ull << 30,
                                               2ull << 30);
  auto kernel_pool = [](numa::Process& kproc, int n) {
    std::vector<numa::Thread*> pool;
    for (int i = 0; i < n; ++i) pool.push_back(&kproc.spawn_thread());
    return pool;
  };
  src_fs = std::make_unique<blk::XfsSim>(*src_fe, src_san->striped(),
                                         src_cache.get(),
                                         kernel_pool(*src_kernel, 8));
  dst_fs = std::make_unique<blk::XfsSim>(*dst_fe, dst_san->striped(),
                                         dst_cache.get(),
                                         kernel_pool(*dst_kernel, 8));

  // Pre-existing source dataset; pre-created destination file.
  src_file = &src_fs->create("dataset", dataset_bytes);
  src_file->size = src_file->allocated = dataset_bytes;
  dst_file = &dst_fs->create("dataset-copy", dataset_bytes);
}

void EndToEndTestbed::start() {
  run_task(eng, src_san->start());
  run_task(eng, dst_san->start());
}

void EndToEndTestbed::add_reverse_files() {
  rev_src_file = &dst_fs->create("dataset-rev", dataset_bytes);
  rev_src_file->size = rev_src_file->allocated = dataset_bytes;
  rev_dst_file = &src_fs->create("dataset-rev-copy", dataset_bytes);
}

std::vector<rdma::Device*> EndToEndTestbed::src_roce() const {
  return {src_devs[0].get(), src_devs[1].get(), src_devs[2].get()};
}

std::vector<rdma::Device*> EndToEndTestbed::dst_roce() const {
  return {dst_devs[0].get(), dst_devs[1].get(), dst_devs[2].get()};
}

std::vector<net::Link*> EndToEndTestbed::links() const {
  std::vector<net::Link*> out;
  for (const auto& l : roce_links) out.push_back(l.get());
  return out;
}

// --- WanTestbed ---

WanTestbed::WanTestbed() {
  a = std::make_unique<numa::Host>(eng, model::wan_host("nersc"));
  b = std::make_unique<numa::Host>(eng, model::wan_host("anl"));
  a_dev = std::make_unique<rdma::Device>(*a, a->profile().nics[0]);
  b_dev = std::make_unique<rdma::Device>(*b, b->profile().nics[0]);
  link = net::make_ani_wan(eng, "ani-loop");
  link->bind_endpoints(a.get(), b.get());
  a_proc = std::make_unique<numa::Process>(
      *a, "rftp-client", numa::NumaBinding::bound(a_dev->node()));
  b_proc = std::make_unique<numa::Process>(
      *b, "rftp-server", numa::NumaBinding::bound(b_dev->node()));
}

}  // namespace e2e::exp
