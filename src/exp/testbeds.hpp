// Testbed assemblies reproducing the paper's Figure 5 / Figure 6 setups.
//
//  * FrontEndPair   — two front-end hosts, three 40G RoCE links (§2.3
//                     motivating experiment, Fig. 4 cost breakdown).
//  * SanTestbed     — front-end initiator + back-end target over two IB
//                     FDR links (Figs. 7/8 iSER evaluation).
//  * EndToEndTestbed— the full Fig. 5 system: SAN -> front-end pair ->
//                     SAN with XFS over iSER on both sides (Figs. 9-12).
//  * WanTestbed     — two hosts on the 95 ms ANI 40G RoCE loop
//                     (Figs. 13/14).
#pragma once

#include <memory>
#include <vector>

#include "apps/fio.hpp"
#include "apps/iperf.hpp"
#include "blk/filesystem.hpp"
#include "exp/san_section.hpp"
#include "exp/runner.hpp"
#include "model/host_profile.hpp"
#include "net/link.hpp"
#include "numa/numa.hpp"
#include "rdma/device.hpp"

namespace e2e::exp {

/// Front-end host profile with the two extra IB FDR ports that connect it
/// to its SAN (Fig. 5 shows both fabrics on each front-end host).
model::HostProfile front_end_with_ib(const std::string& name);

/// Two front-end hosts joined by their three RoCE links.
class FrontEndPair {
 public:
  FrontEndPair();

  sim::Engine eng;
  std::unique_ptr<numa::Host> a;
  std::unique_ptr<numa::Host> b;
  std::vector<std::unique_ptr<rdma::Device>> a_roce;  // 3 devices
  std::vector<std::unique_ptr<rdma::Device>> b_roce;
  std::vector<std::unique_ptr<net::Link>> links;      // 3 RoCE LAN links

  [[nodiscard]] std::vector<apps::IperfLink> iperf_links() const;
  [[nodiscard]] std::vector<net::Link*> link_ptrs() const;
  [[nodiscard]] std::vector<rdma::Device*> a_devs() const;
  [[nodiscard]] std::vector<rdma::Device*> b_devs() const;
};

/// Figs. 7/8: iSER back-end storage evaluation.
class SanTestbed {
 public:
  explicit SanTestbed(SanConfig cfg);

  /// Brings the SAN up (sessions, logins, target workers).
  void start();

  struct FioReport {
    double gbps = 0.0;
    double target_cpu_pct = 0.0;  // absolute CPU (100% == one core)
    metrics::CpuUsage target_usage;
    std::uint64_t ios = 0;
  };
  /// The paper's fio run: `threads_per_lun` jobs per LUN, sequential
  /// read or write at `opts.block_bytes`, for opts.duration.
  FioReport run_fio(const apps::FioOptions& opts, int threads_per_lun);

  sim::Engine eng;
  std::unique_ptr<numa::Host> fe;
  std::vector<std::unique_ptr<rdma::Device>> fe_devs;  // profile order
  std::unique_ptr<SanSection> san;
};

/// Figs. 9-12: full end-to-end system.
class EndToEndTestbed {
 public:
  EndToEndTestbed(bool numa_tuned, std::uint64_t dataset_bytes);

  void start();

  sim::Engine eng;
  std::unique_ptr<numa::Host> src_fe;
  std::unique_ptr<numa::Host> dst_fe;
  std::vector<std::unique_ptr<rdma::Device>> src_devs;  // 0-2 RoCE, 3-4 IB
  std::vector<std::unique_ptr<rdma::Device>> dst_devs;
  std::vector<std::unique_ptr<net::Link>> roce_links;   // 3
  std::unique_ptr<SanSection> src_san;
  std::unique_ptr<SanSection> dst_san;

  // Front-end filesystems: XFS over the striped iSER volume.
  std::unique_ptr<numa::Process> src_kernel;
  std::unique_ptr<numa::Process> dst_kernel;
  std::unique_ptr<blk::PageCache> src_cache;
  std::unique_ptr<blk::PageCache> dst_cache;
  std::unique_ptr<blk::XfsSim> src_fs;
  std::unique_ptr<blk::XfsSim> dst_fs;
  blk::File* src_file = nullptr;  // pre-existing dataset
  blk::File* dst_file = nullptr;

  std::uint64_t dataset_bytes = 0;
  bool numa_tuned = true;

  [[nodiscard]] std::vector<rdma::Device*> src_roce() const;
  [[nodiscard]] std::vector<rdma::Device*> dst_roce() const;
  [[nodiscard]] std::vector<net::Link*> links() const;

  /// A reverse-direction file pair for bi-directional tests.
  void add_reverse_files();
  blk::File* rev_src_file = nullptr;  // on dst side
  blk::File* rev_dst_file = nullptr;  // on src side
};

/// Figs. 13/14: ANI WAN loop.
class WanTestbed {
 public:
  WanTestbed();

  sim::Engine eng;
  std::unique_ptr<numa::Host> a;
  std::unique_ptr<numa::Host> b;
  std::unique_ptr<rdma::Device> a_dev;
  std::unique_ptr<rdma::Device> b_dev;
  std::unique_ptr<net::Link> link;
  std::unique_ptr<numa::Process> a_proc;
  std::unique_ptr<numa::Process> b_proc;
};

}  // namespace e2e::exp
