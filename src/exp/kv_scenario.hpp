// KV scenario: the small-message tier's driving workload.
//
// `pairs` client/server host pairs each run a closed-loop Zipfian GET/PUT
// workload over the rpc tier on their own sim::Engine shard, connected by
// a short rack-scale RoCE link (net::make_roce_rack) — the regime where
// the two-sided-RPC vs one-sided-READ crossover lands inside a practical
// value-size sweep. Every `remote_every`-th operation is carried by a
// cross-shard rpc connection to the next pair's server (client i into
// server (i+1)%pairs), so the conservative-lookahead merge path sees real
// small-message traffic; `shards` selects only the worker-thread count
// and, as everywhere else in this tree, every output is bit-identical for
// any value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace e2e::exp {

struct KvParams {
  int pairs = 1;   // client/server pairs; one engine shard per pair
  int shards = 1;  // worker threads driving the shards
  std::uint64_t keys = 16384;
  std::uint64_t ops_per_pair = 4096;
  std::uint64_t value_bytes = 4096;
  int store_shards = 2;  // per-server NUMA shards (striped across nodes)
  int depth = 8;         // concurrent closed-loop workers per client
  // GET path: false = two-sided rpc (server CPU per call), true = two
  // chained one-sided READs (index entry then value, zero server CPU).
  bool get_via_read = false;
  double zipf_theta = 0.99;  // 0 = uniform key popularity
  double put_frac = 0.1;     // fraction of ops that are PUTs (always rpc)
  // Every Nth op goes to the next pair's server over the cross-shard rpc
  // connection (needs pairs >= 2; 0 disables).
  int remote_every = 16;
  std::uint64_t seed = 1;        // workload rng (keys, op mix)
  std::uint64_t fault_seed = 0;  // != 0: seeded per-pair chaos plans
  bool audit = true;
  bool stats = false;
};

struct KvResult {
  bool complete = true;  // every op finished (and succeeded, fault-free)
  bool audit_ok = true;
  std::size_t audit_violations = 0;
  std::uint64_t ops_done = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t remote_ops = 0;
  std::uint64_t failed_ops = 0;  // rpc gave up / READ retries exhausted
  std::uint64_t rpc_retries = 0;
  std::uint64_t stale_responses = 0;
  std::uint64_t calls_served = 0;  // all servers, ring included
  std::uint64_t doorbells = 0;     // all endpoints
  std::uint64_t doorbell_wrs = 0;
  std::uint64_t poll_batches = 0;
  std::uint64_t poll_cqes = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t windows = 0;
  std::uint64_t cross_posts = 0;
  double wall_seconds = 0.0;  // parallel phase only
  double aggregate_mops = 0.0;
  std::vector<double> pair_mops;
  // Merged op-latency percentiles (ns), GETs and PUTs separately.
  std::uint64_t get_p50_ns = 0, get_p99_ns = 0, get_p999_ns = 0;
  std::uint64_t put_p50_ns = 0, put_p99_ns = 0, put_p999_ns = 0;
  std::string stats_json;  // merged registry dump (params.stats)
  /// One-line fingerprint of every deterministic output above;
  /// bit-identical across shard counts.
  std::string digest;
};

/// Throws std::invalid_argument on out-of-range params
/// (1 <= shards <= pairs, store_shards/keys/values/depth >= 1, ...).
KvResult run_kv(const KvParams& p);

}  // namespace e2e::exp
