// Fleet scenario: the sharded parallel engine's driving workload.
//
// `pairs` independent host pairs each run one RFTP transfer on their own
// sim::Engine shard, plus a ring of cross-shard background RDMA Writes
// (pair i's sender host into pair (i+1)%pairs' receiver host) so the
// cluster's conservative-lookahead merge path carries real traffic every
// window. `shards` selects only the worker-thread count; the executed
// event schedule — and therefore every output — is bit-identical for any
// value (see sim/cluster.hpp for the argument).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace e2e::exp {

struct FleetParams {
  int pairs = 8;        // transfer pairs; one engine shard per pair
  int shards = 1;       // worker threads driving the shards
  std::uint64_t bytes_per_pair = 64ull << 20;
  std::uint64_t block_bytes = 1ull << 20;
  int streams = 3;  // >= 2 so chaos qp-kills have a failover target
  int credits = 8;
  int checkpoint_blocks = 1;
  std::uint64_t ring_messages = 32;  // cross-shard writes per pair
  std::uint64_t ring_msg_bytes = 1ull << 20;
  std::uint64_t fault_seed = 0;  // != 0: seeded per-pair chaos plans
  // Accepted for CLI symmetry but inert: sharded engines run under a
  // Cluster, and RftpSession only constructs the fast-forward detector on
  // a single-engine run (skip_time on a shard would break the conservative
  // lookahead protocol).
  bool fast_forward = false;
  bool audit = true;             // per-shard auditors + merged QP ledgers
  bool stats = false;            // capture merged stats JSON in the result
  bool trace = false;            // capture merged Chrome trace JSON
};

struct FleetResult {
  double aggregate_gbps = 0.0;  // sum over pairs
  std::vector<double> pair_gbps;
  bool complete = true;
  bool integrity_ok = true;
  bool audit_ok = true;
  std::size_t audit_violations = 0;
  std::uint64_t ring_completed = 0;  // cross-shard writes acknowledged
  std::uint64_t sim_events = 0;      // parallel-phase events, all shards
  std::uint64_t windows = 0;         // conservative lookahead windows
  std::uint64_t cross_posts = 0;     // messages through the shard merge
  double wall_seconds = 0.0;         // parallel phase only
  std::string stats_json;  // merged e2e-stats-cluster-v1 (params.stats)
  std::string trace_json;  // merged Chrome trace (params.trace)
  /// One-line fingerprint of every deterministic output above (plus FNV
  /// hashes of the JSON dumps); bit-identical across shard counts.
  std::string digest;
};

/// Throws std::invalid_argument unless 1 <= shards <= pairs.
FleetResult run_fleet(const FleetParams& p);

}  // namespace e2e::exp
