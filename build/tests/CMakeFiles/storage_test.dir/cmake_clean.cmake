file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/blk/block_device_test.cpp.o"
  "CMakeFiles/storage_test.dir/blk/block_device_test.cpp.o.d"
  "CMakeFiles/storage_test.dir/blk/ext4_test.cpp.o"
  "CMakeFiles/storage_test.dir/blk/ext4_test.cpp.o.d"
  "CMakeFiles/storage_test.dir/blk/filesystem_test.cpp.o"
  "CMakeFiles/storage_test.dir/blk/filesystem_test.cpp.o.d"
  "CMakeFiles/storage_test.dir/blk/page_cache_test.cpp.o"
  "CMakeFiles/storage_test.dir/blk/page_cache_test.cpp.o.d"
  "CMakeFiles/storage_test.dir/iscsi/session_test.cpp.o"
  "CMakeFiles/storage_test.dir/iscsi/session_test.cpp.o.d"
  "CMakeFiles/storage_test.dir/iscsi/tcp_session_test.cpp.o"
  "CMakeFiles/storage_test.dir/iscsi/tcp_session_test.cpp.o.d"
  "CMakeFiles/storage_test.dir/scsi/scsi_test.cpp.o"
  "CMakeFiles/storage_test.dir/scsi/scsi_test.cpp.o.d"
  "storage_test"
  "storage_test.pdb"
  "storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
