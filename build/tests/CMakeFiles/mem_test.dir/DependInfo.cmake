
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/buffer_pool_test.cpp" "tests/CMakeFiles/mem_test.dir/mem/buffer_pool_test.cpp.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/buffer_pool_test.cpp.o.d"
  "/root/repo/tests/mem/tmpfs_test.cpp" "tests/CMakeFiles/mem_test.dir/mem/tmpfs_test.cpp.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/tmpfs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/e2e_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/e2e_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/iser/CMakeFiles/e2e_iser.dir/DependInfo.cmake"
  "/root/repo/build/src/rftp/CMakeFiles/e2e_rftp.dir/DependInfo.cmake"
  "/root/repo/build/src/blk/CMakeFiles/e2e_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/iscsi/CMakeFiles/e2e_iscsi.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/e2e_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/e2e_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/e2e_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/numa/CMakeFiles/e2e_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/e2e_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/e2e_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
