file(REMOVE_RECURSE
  "CMakeFiles/numa_test.dir/numa/host_test.cpp.o"
  "CMakeFiles/numa_test.dir/numa/host_test.cpp.o.d"
  "CMakeFiles/numa_test.dir/numa/process_test.cpp.o"
  "CMakeFiles/numa_test.dir/numa/process_test.cpp.o.d"
  "CMakeFiles/numa_test.dir/numa/quad_node_test.cpp.o"
  "CMakeFiles/numa_test.dir/numa/quad_node_test.cpp.o.d"
  "CMakeFiles/numa_test.dir/numa/stream_test.cpp.o"
  "CMakeFiles/numa_test.dir/numa/stream_test.cpp.o.d"
  "CMakeFiles/numa_test.dir/numa/thread_test.cpp.o"
  "CMakeFiles/numa_test.dir/numa/thread_test.cpp.o.d"
  "numa_test"
  "numa_test.pdb"
  "numa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
