# Empty compiler generated dependencies file for rftp_test.
# This may be replaced when dependencies are built.
