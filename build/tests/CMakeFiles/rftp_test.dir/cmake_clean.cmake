file(REMOVE_RECURSE
  "CMakeFiles/rftp_test.dir/rftp/fileset_test.cpp.o"
  "CMakeFiles/rftp_test.dir/rftp/fileset_test.cpp.o.d"
  "CMakeFiles/rftp_test.dir/rftp/rftp_test.cpp.o"
  "CMakeFiles/rftp_test.dir/rftp/rftp_test.cpp.o.d"
  "rftp_test"
  "rftp_test.pdb"
  "rftp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rftp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
