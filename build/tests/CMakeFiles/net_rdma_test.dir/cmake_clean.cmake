file(REMOVE_RECURSE
  "CMakeFiles/net_rdma_test.dir/net/link_binding_test.cpp.o"
  "CMakeFiles/net_rdma_test.dir/net/link_binding_test.cpp.o.d"
  "CMakeFiles/net_rdma_test.dir/net/link_test.cpp.o"
  "CMakeFiles/net_rdma_test.dir/net/link_test.cpp.o.d"
  "CMakeFiles/net_rdma_test.dir/rdma/qp_test.cpp.o"
  "CMakeFiles/net_rdma_test.dir/rdma/qp_test.cpp.o.d"
  "net_rdma_test"
  "net_rdma_test.pdb"
  "net_rdma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_rdma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
