# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/numa_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/net_rdma_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/rftp_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
