file(REMOVE_RECURSE
  "CMakeFiles/e2e_blk.dir/block_device.cpp.o"
  "CMakeFiles/e2e_blk.dir/block_device.cpp.o.d"
  "CMakeFiles/e2e_blk.dir/filesystem.cpp.o"
  "CMakeFiles/e2e_blk.dir/filesystem.cpp.o.d"
  "CMakeFiles/e2e_blk.dir/page_cache.cpp.o"
  "CMakeFiles/e2e_blk.dir/page_cache.cpp.o.d"
  "libe2e_blk.a"
  "libe2e_blk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_blk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
