file(REMOVE_RECURSE
  "libe2e_blk.a"
)
