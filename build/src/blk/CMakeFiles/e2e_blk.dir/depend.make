# Empty dependencies file for e2e_blk.
# This may be replaced when dependencies are built.
