# Empty dependencies file for e2e_rdma.
# This may be replaced when dependencies are built.
