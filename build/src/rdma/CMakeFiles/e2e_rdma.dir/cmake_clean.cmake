file(REMOVE_RECURSE
  "CMakeFiles/e2e_rdma.dir/qp.cpp.o"
  "CMakeFiles/e2e_rdma.dir/qp.cpp.o.d"
  "libe2e_rdma.a"
  "libe2e_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
