
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/qp.cpp" "src/rdma/CMakeFiles/e2e_rdma.dir/qp.cpp.o" "gcc" "src/rdma/CMakeFiles/e2e_rdma.dir/qp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numa/CMakeFiles/e2e_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/e2e_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/e2e_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/e2e_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
