file(REMOVE_RECURSE
  "libe2e_rdma.a"
)
