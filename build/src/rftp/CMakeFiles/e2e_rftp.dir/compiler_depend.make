# Empty compiler generated dependencies file for e2e_rftp.
# This may be replaced when dependencies are built.
