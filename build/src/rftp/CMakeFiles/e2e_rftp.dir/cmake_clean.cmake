file(REMOVE_RECURSE
  "CMakeFiles/e2e_rftp.dir/fileset.cpp.o"
  "CMakeFiles/e2e_rftp.dir/fileset.cpp.o.d"
  "CMakeFiles/e2e_rftp.dir/session.cpp.o"
  "CMakeFiles/e2e_rftp.dir/session.cpp.o.d"
  "libe2e_rftp.a"
  "libe2e_rftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_rftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
