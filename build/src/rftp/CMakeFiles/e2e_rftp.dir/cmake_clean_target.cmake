file(REMOVE_RECURSE
  "libe2e_rftp.a"
)
