file(REMOVE_RECURSE
  "CMakeFiles/e2e_iser.dir/iser.cpp.o"
  "CMakeFiles/e2e_iser.dir/iser.cpp.o.d"
  "libe2e_iser.a"
  "libe2e_iser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_iser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
