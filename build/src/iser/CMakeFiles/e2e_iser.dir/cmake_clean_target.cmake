file(REMOVE_RECURSE
  "libe2e_iser.a"
)
