# Empty compiler generated dependencies file for e2e_iser.
# This may be replaced when dependencies are built.
