file(REMOVE_RECURSE
  "libe2e_metrics.a"
)
