file(REMOVE_RECURSE
  "CMakeFiles/e2e_metrics.dir/table.cpp.o"
  "CMakeFiles/e2e_metrics.dir/table.cpp.o.d"
  "libe2e_metrics.a"
  "libe2e_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
