# Empty dependencies file for e2e_iscsi.
# This may be replaced when dependencies are built.
