file(REMOVE_RECURSE
  "libe2e_iscsi.a"
)
