file(REMOVE_RECURSE
  "CMakeFiles/e2e_iscsi.dir/initiator.cpp.o"
  "CMakeFiles/e2e_iscsi.dir/initiator.cpp.o.d"
  "CMakeFiles/e2e_iscsi.dir/target.cpp.o"
  "CMakeFiles/e2e_iscsi.dir/target.cpp.o.d"
  "CMakeFiles/e2e_iscsi.dir/tcp_datamover.cpp.o"
  "CMakeFiles/e2e_iscsi.dir/tcp_datamover.cpp.o.d"
  "libe2e_iscsi.a"
  "libe2e_iscsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_iscsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
