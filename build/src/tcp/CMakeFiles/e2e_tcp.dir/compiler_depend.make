# Empty compiler generated dependencies file for e2e_tcp.
# This may be replaced when dependencies are built.
