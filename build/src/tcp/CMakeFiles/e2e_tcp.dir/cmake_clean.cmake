file(REMOVE_RECURSE
  "CMakeFiles/e2e_tcp.dir/connection.cpp.o"
  "CMakeFiles/e2e_tcp.dir/connection.cpp.o.d"
  "libe2e_tcp.a"
  "libe2e_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
