file(REMOVE_RECURSE
  "libe2e_tcp.a"
)
