file(REMOVE_RECURSE
  "libe2e_apps.a"
)
