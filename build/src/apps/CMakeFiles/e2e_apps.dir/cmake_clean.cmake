file(REMOVE_RECURSE
  "CMakeFiles/e2e_apps.dir/fio.cpp.o"
  "CMakeFiles/e2e_apps.dir/fio.cpp.o.d"
  "CMakeFiles/e2e_apps.dir/gridftp.cpp.o"
  "CMakeFiles/e2e_apps.dir/gridftp.cpp.o.d"
  "CMakeFiles/e2e_apps.dir/iperf.cpp.o"
  "CMakeFiles/e2e_apps.dir/iperf.cpp.o.d"
  "CMakeFiles/e2e_apps.dir/perftest.cpp.o"
  "CMakeFiles/e2e_apps.dir/perftest.cpp.o.d"
  "libe2e_apps.a"
  "libe2e_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
