# Empty compiler generated dependencies file for e2e_apps.
# This may be replaced when dependencies are built.
