# Empty compiler generated dependencies file for e2e_numa.
# This may be replaced when dependencies are built.
