file(REMOVE_RECURSE
  "libe2e_numa.a"
)
