
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numa/host.cpp" "src/numa/CMakeFiles/e2e_numa.dir/host.cpp.o" "gcc" "src/numa/CMakeFiles/e2e_numa.dir/host.cpp.o.d"
  "/root/repo/src/numa/stream.cpp" "src/numa/CMakeFiles/e2e_numa.dir/stream.cpp.o" "gcc" "src/numa/CMakeFiles/e2e_numa.dir/stream.cpp.o.d"
  "/root/repo/src/numa/thread.cpp" "src/numa/CMakeFiles/e2e_numa.dir/thread.cpp.o" "gcc" "src/numa/CMakeFiles/e2e_numa.dir/thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/e2e_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/e2e_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
