file(REMOVE_RECURSE
  "CMakeFiles/e2e_numa.dir/host.cpp.o"
  "CMakeFiles/e2e_numa.dir/host.cpp.o.d"
  "CMakeFiles/e2e_numa.dir/stream.cpp.o"
  "CMakeFiles/e2e_numa.dir/stream.cpp.o.d"
  "CMakeFiles/e2e_numa.dir/thread.cpp.o"
  "CMakeFiles/e2e_numa.dir/thread.cpp.o.d"
  "libe2e_numa.a"
  "libe2e_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
