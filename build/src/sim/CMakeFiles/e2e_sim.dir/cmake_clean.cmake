file(REMOVE_RECURSE
  "CMakeFiles/e2e_sim.dir/engine.cpp.o"
  "CMakeFiles/e2e_sim.dir/engine.cpp.o.d"
  "libe2e_sim.a"
  "libe2e_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
