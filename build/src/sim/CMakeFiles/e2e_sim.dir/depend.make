# Empty dependencies file for e2e_sim.
# This may be replaced when dependencies are built.
