file(REMOVE_RECURSE
  "CMakeFiles/e2e_mem.dir/tmpfs.cpp.o"
  "CMakeFiles/e2e_mem.dir/tmpfs.cpp.o.d"
  "libe2e_mem.a"
  "libe2e_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
