# Empty dependencies file for e2e_mem.
# This may be replaced when dependencies are built.
