file(REMOVE_RECURSE
  "libe2e_mem.a"
)
