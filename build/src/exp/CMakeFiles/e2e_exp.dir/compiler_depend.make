# Empty compiler generated dependencies file for e2e_exp.
# This may be replaced when dependencies are built.
