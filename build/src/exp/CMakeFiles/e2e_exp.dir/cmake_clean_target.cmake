file(REMOVE_RECURSE
  "libe2e_exp.a"
)
