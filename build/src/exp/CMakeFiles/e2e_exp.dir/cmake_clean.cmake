file(REMOVE_RECURSE
  "CMakeFiles/e2e_exp.dir/san_section.cpp.o"
  "CMakeFiles/e2e_exp.dir/san_section.cpp.o.d"
  "CMakeFiles/e2e_exp.dir/testbeds.cpp.o"
  "CMakeFiles/e2e_exp.dir/testbeds.cpp.o.d"
  "libe2e_exp.a"
  "libe2e_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
