file(REMOVE_RECURSE
  "CMakeFiles/datacenter_sync.dir/datacenter_sync.cpp.o"
  "CMakeFiles/datacenter_sync.dir/datacenter_sync.cpp.o.d"
  "datacenter_sync"
  "datacenter_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
