# Empty compiler generated dependencies file for datacenter_sync.
# This may be replaced when dependencies are built.
