file(REMOVE_RECURSE
  "CMakeFiles/e2e_transfer_sim.dir/e2e_transfer_sim.cpp.o"
  "CMakeFiles/e2e_transfer_sim.dir/e2e_transfer_sim.cpp.o.d"
  "e2e_transfer_sim"
  "e2e_transfer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_transfer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
