# Empty dependencies file for e2e_transfer_sim.
# This may be replaced when dependencies are built.
