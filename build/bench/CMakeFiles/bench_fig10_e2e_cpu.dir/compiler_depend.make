# Empty compiler generated dependencies file for bench_fig10_e2e_cpu.
# This may be replaced when dependencies are built.
