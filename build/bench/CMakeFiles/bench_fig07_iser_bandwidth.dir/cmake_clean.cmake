file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_iser_bandwidth.dir/bench_fig07_iser_bandwidth.cpp.o"
  "CMakeFiles/bench_fig07_iser_bandwidth.dir/bench_fig07_iser_bandwidth.cpp.o.d"
  "bench_fig07_iser_bandwidth"
  "bench_fig07_iser_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_iser_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
