# Empty compiler generated dependencies file for bench_fig07_iser_bandwidth.
# This may be replaced when dependencies are built.
