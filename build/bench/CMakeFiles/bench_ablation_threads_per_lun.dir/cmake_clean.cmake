file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_threads_per_lun.dir/bench_ablation_threads_per_lun.cpp.o"
  "CMakeFiles/bench_ablation_threads_per_lun.dir/bench_ablation_threads_per_lun.cpp.o.d"
  "bench_ablation_threads_per_lun"
  "bench_ablation_threads_per_lun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_threads_per_lun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
