# Empty dependencies file for bench_ablation_threads_per_lun.
# This may be replaced when dependencies are built.
