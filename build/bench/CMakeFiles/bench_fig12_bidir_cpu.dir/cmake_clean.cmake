file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_bidir_cpu.dir/bench_fig12_bidir_cpu.cpp.o"
  "CMakeFiles/bench_fig12_bidir_cpu.dir/bench_fig12_bidir_cpu.cpp.o.d"
  "bench_fig12_bidir_cpu"
  "bench_fig12_bidir_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_bidir_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
