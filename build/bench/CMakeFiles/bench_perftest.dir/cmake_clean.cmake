file(REMOVE_RECURSE
  "CMakeFiles/bench_perftest.dir/bench_perftest.cpp.o"
  "CMakeFiles/bench_perftest.dir/bench_perftest.cpp.o.d"
  "bench_perftest"
  "bench_perftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
