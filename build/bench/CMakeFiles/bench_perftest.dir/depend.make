# Empty dependencies file for bench_perftest.
# This may be replaced when dependencies are built.
