# Empty compiler generated dependencies file for bench_fig04_cpu_breakdown.
# This may be replaced when dependencies are built.
