file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_iser_cpu.dir/bench_fig08_iser_cpu.cpp.o"
  "CMakeFiles/bench_fig08_iser_cpu.dir/bench_fig08_iser_cpu.cpp.o.d"
  "bench_fig08_iser_cpu"
  "bench_fig08_iser_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_iser_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
