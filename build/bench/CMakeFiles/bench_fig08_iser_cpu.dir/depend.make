# Empty dependencies file for bench_fig08_iser_cpu.
# This may be replaced when dependencies are built.
