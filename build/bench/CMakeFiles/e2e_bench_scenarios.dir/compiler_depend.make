# Empty compiler generated dependencies file for e2e_bench_scenarios.
# This may be replaced when dependencies are built.
