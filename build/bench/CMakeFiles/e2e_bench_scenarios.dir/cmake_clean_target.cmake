file(REMOVE_RECURSE
  "libe2e_bench_scenarios.a"
)
