file(REMOVE_RECURSE
  "CMakeFiles/e2e_bench_scenarios.dir/scenarios.cpp.o"
  "CMakeFiles/e2e_bench_scenarios.dir/scenarios.cpp.o.d"
  "libe2e_bench_scenarios.a"
  "libe2e_bench_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_bench_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
