# Empty dependencies file for bench_fig14_wan_cpu.
# This may be replaced when dependencies are built.
