file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rftp.dir/bench_ablation_rftp.cpp.o"
  "CMakeFiles/bench_ablation_rftp.dir/bench_ablation_rftp.cpp.o.d"
  "bench_ablation_rftp"
  "bench_ablation_rftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
