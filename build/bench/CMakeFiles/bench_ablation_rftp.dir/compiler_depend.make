# Empty compiler generated dependencies file for bench_ablation_rftp.
# This may be replaced when dependencies are built.
