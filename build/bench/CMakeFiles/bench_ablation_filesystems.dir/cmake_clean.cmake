file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_filesystems.dir/bench_ablation_filesystems.cpp.o"
  "CMakeFiles/bench_ablation_filesystems.dir/bench_ablation_filesystems.cpp.o.d"
  "bench_ablation_filesystems"
  "bench_ablation_filesystems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_filesystems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
