# Empty compiler generated dependencies file for bench_ablation_filesystems.
# This may be replaced when dependencies are built.
