file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iser_vs_tcp.dir/bench_ablation_iser_vs_tcp.cpp.o"
  "CMakeFiles/bench_ablation_iser_vs_tcp.dir/bench_ablation_iser_vs_tcp.cpp.o.d"
  "bench_ablation_iser_vs_tcp"
  "bench_ablation_iser_vs_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iser_vs_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
