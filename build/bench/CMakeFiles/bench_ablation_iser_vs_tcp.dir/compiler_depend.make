# Empty compiler generated dependencies file for bench_ablation_iser_vs_tcp.
# This may be replaced when dependencies are built.
