# Empty dependencies file for bench_fig09_e2e_throughput.
# This may be replaced when dependencies are built.
