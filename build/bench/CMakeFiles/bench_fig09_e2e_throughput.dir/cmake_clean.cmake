file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_e2e_throughput.dir/bench_fig09_e2e_throughput.cpp.o"
  "CMakeFiles/bench_fig09_e2e_throughput.dir/bench_fig09_e2e_throughput.cpp.o.d"
  "bench_fig09_e2e_throughput"
  "bench_fig09_e2e_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_e2e_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
