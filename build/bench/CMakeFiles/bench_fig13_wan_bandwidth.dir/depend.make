# Empty dependencies file for bench_fig13_wan_bandwidth.
# This may be replaced when dependencies are built.
